#include <gtest/gtest.h>

#include <tuple>

#include "common/coding.h"
#include "formats/rcfile/rcfile_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 64 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<DefaultPlacementPolicy>(5));
}

// (row group size, codec, split size)
using RcCase = std::tuple<uint64_t, CodecType, uint64_t>;

class RcFileRoundTripTest : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcFileRoundTripTest, AllRecordsExactlyOnce) {
  const auto& [row_group_size, codec, split_size] = GetParam();
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();

  RcFileWriterOptions options;
  options.row_group_size = row_group_size;
  options.codec = codec;
  std::unique_ptr<RcFileWriter> writer;
  ASSERT_TRUE(
      RcFileWriter::Open(fs.get(), "/rc", schema, options, &writer).ok());

  MicrobenchGenerator gen(11);
  const int kRecords = 1500;
  std::vector<Value> originals;
  for (int i = 0; i < kRecords; ++i) {
    Value record = gen.Next();
    // Tag each record with a unique int in int0 for identity checking.
    record.mutable_elements()->at(6) = Value::Int32(i);
    originals.push_back(record);
    ASSERT_TRUE(writer->WriteRecord(record).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  RcFileInputFormat format;
  JobConfig config;
  config.input_paths = {"/rc"};
  config.split_size = split_size;
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());

  std::vector<bool> seen(kRecords, false);
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) {
      const int id = reader->record().GetOrDie("int0").int32_value();
      ASSERT_GE(id, 0);
      ASSERT_LT(id, kRecords);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      EXPECT_EQ(reader->record().GetOrDie("str3").string_value(),
                originals[id].elements()[3].string_value());
      EXPECT_EQ(reader->record()
                    .GetOrDie("map0")
                    .Compare(originals[id].elements()[12]),
                0);
    }
    ASSERT_TRUE(reader->status().ok()) << reader->status().ToString();
  }
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_TRUE(seen[i]) << "record " << i << " lost";
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupSizesCodecsSplits, RcFileRoundTripTest,
    ::testing::Values(RcCase{16 * 1024, CodecType::kNone, 0},
                      RcCase{16 * 1024, CodecType::kNone, 20000},
                      RcCase{64 * 1024, CodecType::kNone, 50000},
                      RcCase{16 * 1024, CodecType::kLzf, 0},
                      RcCase{64 * 1024, CodecType::kLzf, 30000},
                      RcCase{16 * 1024, CodecType::kZlite, 0},
                      RcCase{4 * 1024, CodecType::kNone, 7000}));

TEST(RcFileTest, ProjectionMaterializesOnlyRequestedColumns) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<RcFileWriter> writer;
  ASSERT_TRUE(RcFileWriter::Open(fs.get(), "/rc", schema,
                                 RcFileWriterOptions{}, &writer)
                  .ok());
  MicrobenchGenerator gen(13);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  RcFileInputFormat format;
  JobConfig config;
  config.input_paths = {"/rc"};
  config.projection = {"int2", "map0"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  std::unique_ptr<RecordReader> reader;
  ASSERT_TRUE(format
                  .CreateRecordReader(fs.get(), config, splits[0],
                                      ReadContext{}, &reader)
                  .ok());
  ASSERT_TRUE(reader->Next());
  EXPECT_EQ(reader->record().GetOrDie("int2").kind(), TypeKind::kInt32);
  EXPECT_EQ(reader->record().GetOrDie("map0").kind(), TypeKind::kMap);
  // Unprojected column comes back null, not garbage.
  EXPECT_TRUE(reader->record().GetOrDie("str0").is_null());
}

TEST(RcFileTest, UnknownProjectedColumnRejected) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<RcFileWriter> writer;
  ASSERT_TRUE(RcFileWriter::Open(fs.get(), "/rc", schema,
                                 RcFileWriterOptions{}, &writer)
                  .ok());
  MicrobenchGenerator gen(14);
  ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  ASSERT_TRUE(writer->Close().ok());

  RcFileInputFormat format;
  JobConfig config;
  config.input_paths = {"/rc"};
  config.projection = {"no_such_col"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  std::unique_ptr<RecordReader> reader;
  EXPECT_TRUE(format
                  .CreateRecordReader(fs.get(), config, splits[0],
                                      ReadContext{}, &reader)
                  .IsInvalidArgument());
}

TEST(RcFileTest, ProjectionReadsFewerBytesThanFullScan) {
  // The I/O-elimination property Fig. 7 measures: projecting one narrow
  // column must fetch fewer bytes than scanning everything — but, because
  // of row-group metadata and buffer-granularity prefetch, still far more
  // than the column's own bytes (CIF's advantage).
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  RcFileWriterOptions options;
  options.row_group_size = 64 * 1024;
  std::unique_ptr<RcFileWriter> writer;
  ASSERT_TRUE(
      RcFileWriter::Open(fs.get(), "/rc", schema, options, &writer).ok());
  MicrobenchGenerator gen(15);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  auto scan_bytes = [&](std::vector<std::string> projection) {
    RcFileInputFormat format;
    JobConfig config;
    config.input_paths = {"/rc"};
    config.projection = std::move(projection);
    std::vector<InputSplit> splits;
    EXPECT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
    IoStats stats;
    for (const InputSplit& split : splits) {
      std::unique_ptr<RecordReader> reader;
      EXPECT_TRUE(format
                      .CreateRecordReader(fs.get(), config, split,
                                          ReadContext{kAnyNode, &stats},
                                          &reader)
                      .ok());
      while (reader->Next()) {
      }
      EXPECT_TRUE(reader->status().ok());
    }
    return stats.TotalBytes();
  };

  const uint64_t one_int = scan_bytes({"int0"});
  const uint64_t all = scan_bytes({});
  EXPECT_LT(one_int, all);
  // ... but the metadata + prefetch overhead keeps it well above the
  // actual size of one int column (3000 records × ~2 bytes).
  EXPECT_GT(one_int, 30u * 3000u);
}

// Golden-byte regression: the sync marker is a specified function of the
// dataset path (FNV-1a/splitmix64 seeded with kRcSyncSeed). Pinning the
// exact bytes catches any platform- or refactor-induced drift in the
// on-disk format — old files would stop realigning at split boundaries.
TEST(RcFileTest, SyncMarkerBytesArePinned) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<RcFileWriter> writer;
  ASSERT_TRUE(RcFileWriter::Open(fs.get(), "/golden-rc", schema,
                                 RcFileWriterOptions{}, &writer)
                  .ok());
  ASSERT_TRUE(writer->Close().ok());

  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/golden-rc/part-00000", ReadContext{}, &reader).ok());
  std::string header;
  ASSERT_TRUE(reader->Read(0, reader->size(), &header).ok());

  // Header layout: magic(4) | length-prefixed schema | codec byte |
  // sync(16).
  Slice cursor(header);
  ASSERT_GE(cursor.size(), 4u);
  cursor.RemovePrefix(4);
  Slice schema_text;
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &schema_text).ok());
  ASSERT_GE(cursor.size(), 1u + 16u);
  cursor.RemovePrefix(1);

  const unsigned char kGolden[16] = {0x9c, 0x06, 0xf0, 0x3c, 0x30, 0xf8,
                                     0x5e, 0x83, 0xfd, 0xd7, 0x07, 0x36,
                                     0xc9, 0x9a, 0xe0, 0x24};
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(cursor[i]), kGolden[i])
        << "sync marker byte " << i << " drifted";
  }
}

TEST(RcFileTest, CompressionShrinksFile) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  uint64_t sizes[2];
  int idx = 0;
  for (CodecType codec : {CodecType::kNone, CodecType::kZlite}) {
    RcFileWriterOptions options;
    options.codec = codec;
    const std::string path = "/rc" + std::to_string(idx);
    std::unique_ptr<RcFileWriter> writer;
    ASSERT_TRUE(
        RcFileWriter::Open(fs.get(), path, schema, options, &writer).ok());
    MicrobenchGenerator gen(16);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
    ASSERT_TRUE(fs->GetFileSize(path + "/part-00000", &sizes[idx]).ok());
    ++idx;
  }
  EXPECT_LT(sizes[1], sizes[0]);
}

}  // namespace
}  // namespace colmr
