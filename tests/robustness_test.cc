// Failure-injection and fuzz tests: every decoder in the library must
// turn arbitrary or corrupted bytes into a Status, never into a crash,
// hang, or unbounded allocation.

#include <gtest/gtest.h>

#include "cif/cif.h"
#include "cif/cof.h"
#include "cif/column_reader.h"
#include "cif/column_writer.h"
#include "common/random.h"
#include "compress/codec.h"
#include "formats/rcfile/rcfile.h"
#include "formats/seq/seq_file.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"
#include "serde/boxed.h"
#include "serde/encoding.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 32 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(77));
}

Schema::Ptr FuzzSchema() {
  Schema::Ptr schema;
  Status s = Schema::Parse(
      "record F { a: int, b: string, c: array<long>, d: map<string>, "
      "e: record N { x: double, y: bytes } }",
      &schema);
  EXPECT_TRUE(s.ok());
  return schema;
}

// Pure random bytes must never crash any value decoder.
class DecoderFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzzTest, RandomBytesNeverCrash) {
  Random rng(GetParam() * 1337 + 1);
  Schema::Ptr schema = FuzzSchema();
  for (int round = 0; round < 500; ++round) {
    std::string bytes;
    const size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    Slice cursor(bytes);
    Value value;
    (void)DecodeValue(*schema, &cursor, &value);  // Status either way
    Slice skip_cursor(bytes);
    (void)SkipValue(*schema, &skip_cursor);
    Slice tagged_cursor(bytes);
    Value tagged;
    (void)DecodeTaggedValue(&tagged_cursor, &tagged);
    Slice boxed_cursor(bytes);
    std::unique_ptr<BoxedValue> boxed;
    (void)DecodeBoxed(*schema, &boxed_cursor, &boxed);
  }
}

TEST_P(DecoderFuzzTest, RandomBytesNeverCrashCodecs) {
  Random rng(GetParam() * 7331 + 5);
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    const size_t len = rng.Uniform(500);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    for (CodecType type :
         {CodecType::kNone, CodecType::kLzf, CodecType::kZlite}) {
      Buffer out;
      (void)GetCodec(type)->Decompress(bytes, &out);
    }
    StringDictionary dict;
    Slice cursor(bytes);
    (void)dict.Deserialize(&cursor);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest, ::testing::Range(1, 6));

// Bit flips in a valid compressed stream must yield Corruption or wrong
// bytes, never a crash; a size mismatch must always be caught.
TEST(CorruptionTest, FlippedCompressedBits) {
  Random rng(42);
  std::string payload;
  for (int i = 0; i < 200; ++i) payload += rng.NextWord(7) + ' ';
  for (CodecType type : {CodecType::kLzf, CodecType::kZlite}) {
    const Codec* codec = GetCodec(type);
    Buffer compressed;
    ASSERT_TRUE(codec->Compress(payload, &compressed).ok());
    for (int round = 0; round < 300; ++round) {
      std::string mutated = compressed.str();
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
      Buffer out;
      Status s = codec->Decompress(mutated, &out);
      if (s.ok()) {
        // Silent mis-decodes may happen (no per-block checksum inside the
        // codec), but the declared size must always be honoured.
        EXPECT_LE(out.size(), payload.size() * 4 + 64);
      }
    }
  }
}

// Truncation at EVERY byte offset must be reported, not crash and not
// silently succeed: all three stream formats declare their full extent up
// front (raw size for the codecs, entry count for the dictionary), so a
// stream missing its tail is always detectably corrupt.
TEST(CorruptionTest, TruncatedCompressedStreamsAlwaysError) {
  Random rng(91);
  std::string payload;
  for (int i = 0; i < 250; ++i) payload += rng.NextWord(8) + ' ';
  for (CodecType type : {CodecType::kLzf, CodecType::kZlite}) {
    const Codec* codec = GetCodec(type);
    Buffer compressed;
    ASSERT_TRUE(codec->Compress(payload, &compressed).ok());
    ASSERT_GT(compressed.size(), 1u);
    for (size_t cut = 0; cut < compressed.size(); ++cut) {
      Buffer out;
      Status s = codec->Decompress(Slice(compressed.data(), cut), &out);
      EXPECT_FALSE(s.ok()) << "codec " << static_cast<int>(type)
                           << " accepted a stream truncated at " << cut
                           << " of " << compressed.size();
    }
    // The untruncated stream still round-trips.
    Buffer out;
    ASSERT_TRUE(codec->Decompress(compressed.AsSlice(), &out).ok());
    EXPECT_EQ(out.str(), payload);
  }
}

TEST(CorruptionTest, TruncatedDictionaryAlwaysErrors) {
  Random rng(17);
  StringDictionary dict;
  for (int i = 0; i < 64; ++i) dict.Intern(rng.NextWord(9));
  Buffer serialized;
  dict.Serialize(&serialized);
  ASSERT_EQ(serialized.size(), dict.SerializedSize());
  for (size_t cut = 0; cut < serialized.size(); ++cut) {
    StringDictionary parsed;
    Slice cursor(serialized.data(), cut);
    Status s = parsed.Deserialize(&cursor);
    EXPECT_FALSE(s.ok()) << "dictionary truncated at " << cut << " of "
                         << serialized.size();
  }
  StringDictionary parsed;
  Slice cursor = serialized.AsSlice();
  ASSERT_TRUE(parsed.Deserialize(&cursor).ok());
  EXPECT_EQ(parsed.size(), dict.size());
}

// LZF boundary conditions: match lengths straddling the 264-byte cap and
// back-references at exactly the 8 KiB window edge. A length mis-encode
// would corrupt runs; an off-by-one on distance would either miss the
// match (harmless) or reach outside the window (corrupt).
TEST(EdgeCaseTest, LzfWindowAndMatchBoundaryRoundTrips) {
  const Codec* codec = GetCodec(CodecType::kLzf);
  const size_t kWindow = 8192;
  const size_t kMaxMatch = 264;
  std::vector<std::string> payloads;
  // Runs around the minimum and maximum match lengths.
  for (size_t n : {size_t{2}, size_t{3}, size_t{4}, kMaxMatch - 1, kMaxMatch,
                   kMaxMatch + 1, 2 * kMaxMatch, 2 * kMaxMatch + 3}) {
    payloads.push_back(std::string(n, 'x'));
  }
  // A maximal-length match at a large distance: the same 264-byte pattern
  // twice, separated by incompressible filler.
  Random rng(3);
  std::string pattern;
  for (size_t i = 0; i < kMaxMatch; ++i) {
    pattern.push_back(static_cast<char>('A' + (i * 17) % 26));
  }
  for (size_t gap : {size_t{0}, size_t{100}, kWindow - pattern.size(),
                     kWindow - pattern.size() + 1, kWindow + 1}) {
    std::string filler;
    for (size_t i = 0; i < gap; ++i) {
      filler.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    payloads.push_back(pattern + filler + pattern);
  }
  // Repeats at exactly the window edge and one past it (the latter must
  // not be emitted as a match; round-trip still must hold).
  for (size_t distance : {kWindow - 1, kWindow, kWindow + 1}) {
    std::string head = "0123456789abcdef";
    std::string body;
    while (head.size() + body.size() < distance) {
      body.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    payloads.push_back(head + body.substr(0, distance - head.size()) + head);
  }
  for (const std::string& payload : payloads) {
    Buffer compressed, out;
    ASSERT_TRUE(codec->Compress(payload, &compressed).ok());
    ASSERT_TRUE(codec->Decompress(compressed.AsSlice(), &out).ok())
        << "payload size " << payload.size();
    EXPECT_EQ(out.str(), payload) << "payload size " << payload.size();
  }
}

TEST(CorruptionTest, TruncatedColumnFilesFailCleanly) {
  auto fs = MakeFs();
  for (ColumnLayout layout :
       {ColumnLayout::kPlain, ColumnLayout::kSkipList,
        ColumnLayout::kCompressedBlocks, ColumnLayout::kDictSkipList}) {
    const bool is_map = layout == ColumnLayout::kDictSkipList;
    Schema::Ptr type =
        is_map ? Schema::Map(Schema::Int32()) : Schema::String();
    ColumnOptions options;
    options.layout = layout;
    const std::string path =
        "/col" + std::to_string(static_cast<int>(layout));
    std::unique_ptr<ColumnFileWriter> writer;
    ASSERT_TRUE(
        ColumnFileWriter::Create(fs.get(), path, type, options, &writer)
            .ok());
    Random rng(5);
    for (int i = 0; i < 500; ++i) {
      if (is_map) {
        ASSERT_TRUE(
            writer->Append(Value::Map({{rng.NextWord(5), Value::Int32(i)}}))
                .ok());
      } else {
        ASSERT_TRUE(
            writer->Append(Value::String(rng.NextString(5, 40))).ok());
      }
    }
    ASSERT_TRUE(writer->Close().ok());

    // Rewrite truncated copies and scan them to the end: must stop with a
    // Status (or read fewer rows), never crash.
    std::unique_ptr<FileReader> reader;
    ASSERT_TRUE(fs->Open(path, ReadContext{}, &reader).ok());
    std::string full;
    ASSERT_TRUE(reader->Read(0, reader->size(), &full).ok());
    for (size_t cut : {full.size() / 4, full.size() / 2, full.size() - 3}) {
      const std::string tpath = path + "_t" + std::to_string(cut);
      std::unique_ptr<FileWriter> trunc_writer;
      ASSERT_TRUE(fs->Create(tpath, &trunc_writer).ok());
      trunc_writer->Append(Slice(full.data(), cut));
      ASSERT_TRUE(trunc_writer->Close().ok());

      std::unique_ptr<ColumnFileReader> column;
      Status s = ColumnFileReader::Open(fs.get(), tpath, ReadContext{},
                                        &column);
      if (!s.ok()) continue;  // header itself truncated: fine
      Value v;
      for (uint64_t row = 0; row < column->row_count(); ++row) {
        s = column->ReadValue(&v);
        if (!s.ok()) break;
      }
      // Either it errored or (for cuts past all values) read everything.
      SUCCEED();
    }
  }
}

TEST(CorruptionTest, FlippedColumnFileBytesNeverCrash) {
  auto fs = MakeFs();
  Schema::Ptr type = Schema::Map(Schema::Int32());
  ColumnOptions options;
  options.layout = ColumnLayout::kDictSkipList;
  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(
      ColumnFileWriter::Create(fs.get(), "/c", type, options, &writer).ok());
  Random rng(6);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(writer
                    ->Append(Value::Map({{rng.NextWord(6), Value::Int32(i)},
                                         {rng.NextWord(4), Value::Int32(i)}}))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/c", ReadContext{}, &reader).ok());
  std::string full;
  ASSERT_TRUE(reader->Read(0, reader->size(), &full).ok());

  for (int round = 0; round < 30; ++round) {
    std::string mutated = full;
    for (int flips = 0; flips < 3; ++flips) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }
    const std::string path = "/mut" + std::to_string(round);
    std::unique_ptr<FileWriter> mut_writer;
    ASSERT_TRUE(fs->Create(path, &mut_writer).ok());
    mut_writer->Append(mutated);
    ASSERT_TRUE(mut_writer->Close().ok());

    std::unique_ptr<ColumnFileReader> column;
    Status s = ColumnFileReader::Open(fs.get(), path, ReadContext{}, &column);
    if (!s.ok()) continue;
    Value v;
    for (uint64_t row = 0; row < column->row_count(); ++row) {
      if (!column->ReadValue(&v).ok()) break;
    }
  }
}

TEST(EdgeCaseTest, EmptyDatasets) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();

  // Zero-record RCFile.
  std::unique_ptr<RcFileWriter> rc;
  ASSERT_TRUE(RcFileWriter::Open(fs.get(), "/rc", schema,
                                 RcFileWriterOptions{}, &rc)
                  .ok());
  ASSERT_TRUE(rc->Close().ok());
  uint64_t size;
  ASSERT_TRUE(fs->GetFileSize("/rc/part-00000", &size).ok());
  std::unique_ptr<RcFileScanner> scanner;
  ASSERT_TRUE(RcFileScanner::Open(fs.get(), "/rc/part-00000", ReadContext{},
                                  0, size, {}, &scanner)
                  .ok());
  EXPECT_FALSE(scanner->Next());
  EXPECT_TRUE(scanner->status().ok());

  // Zero-record column file.
  std::unique_ptr<ColumnFileWriter> col;
  ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), "/c", Schema::Int32(),
                                       ColumnOptions{}, &col)
                  .ok());
  ASSERT_TRUE(col->Close().ok());
  std::unique_ptr<ColumnFileReader> col_reader;
  ASSERT_TRUE(
      ColumnFileReader::Open(fs.get(), "/c", ReadContext{}, &col_reader).ok());
  EXPECT_EQ(col_reader->row_count(), 0u);
  Value v;
  EXPECT_TRUE(col_reader->ReadValue(&v).IsOutOfRange());
  EXPECT_TRUE(col_reader->SkipRows(5).ok());  // clamps to zero
}

TEST(EdgeCaseTest, SkipListBoundaryRowCounts) {
  // Row counts sitting exactly on the 10/100/1000 skip boundaries.
  auto fs = MakeFs();
  for (uint64_t rows : {1ull, 9ull, 10ull, 11ull, 100ull, 999ull, 1000ull,
                        1001ull, 2000ull}) {
    ColumnOptions options;
    options.layout = ColumnLayout::kSkipList;
    const std::string path = "/b" + std::to_string(rows);
    std::unique_ptr<ColumnFileWriter> writer;
    ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), path, Schema::Int64(),
                                         options, &writer)
                    .ok());
    for (uint64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(writer->Append(Value::Int64(static_cast<int64_t>(i))).ok());
    }
    ASSERT_TRUE(writer->Close().ok());

    // Read everything via maximal skips: Skip(all) then confirm position,
    // then reopen and read the last row via skip(rows - 1).
    std::unique_ptr<ColumnFileReader> reader;
    ASSERT_TRUE(
        ColumnFileReader::Open(fs.get(), path, ReadContext{}, &reader).ok());
    ASSERT_TRUE(reader->SkipRows(rows).ok());
    EXPECT_EQ(reader->current_row(), rows);

    ASSERT_TRUE(
        ColumnFileReader::Open(fs.get(), path, ReadContext{}, &reader).ok());
    ASSERT_TRUE(reader->SkipRows(rows - 1).ok());
    Value v;
    ASSERT_TRUE(reader->ReadValue(&v).ok()) << rows;
    EXPECT_EQ(v.int64_value(), static_cast<int64_t>(rows - 1)) << rows;
  }
}

TEST(EdgeCaseTest, ZliteDegenerateInputs) {
  const Codec* codec = GetCodec(CodecType::kZlite);
  // Single distinct byte (one-symbol Huffman code), and a run exercising
  // long match lengths.
  for (const std::string& payload :
       {std::string(100000, 'x'), std::string("a"),
        std::string(1, '\0') + std::string(70000, 'q')}) {
    Buffer compressed, out;
    ASSERT_TRUE(codec->Compress(payload, &compressed).ok());
    ASSERT_TRUE(codec->Decompress(compressed.AsSlice(), &out).ok());
    EXPECT_EQ(out.str(), payload);
  }
  // All 256 byte values uniformly (a full Huffman alphabet).
  std::string all_bytes;
  for (int round = 0; round < 64; ++round) {
    for (int b = 0; b < 256; ++b) {
      all_bytes.push_back(static_cast<char>(b));
    }
  }
  Buffer compressed, out;
  ASSERT_TRUE(codec->Compress(all_bytes, &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed.AsSlice(), &out).ok());
  EXPECT_EQ(out.str(), all_bytes);
}

TEST(EdgeCaseTest, EmptyRecordSchema) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record E { }", &schema).ok());
  EXPECT_TRUE(schema->fields().empty());
  Buffer encoded;
  ASSERT_TRUE(EncodeValue(*schema, Value::Record({}), &encoded).ok());
  EXPECT_TRUE(encoded.empty());
}

TEST(EdgeCaseTest, DeeplyNestedValuesRoundTrip) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("array<array<array<map<array<int>>>>>",
                            &schema)
                  .ok());
  Value leaf = Value::Array({Value::Int32(1), Value::Int32(2)});
  Value value = Value::Array({Value::Array(
      {Value::Array({Value::Map({{"k", leaf}})})})});
  Buffer encoded;
  ASSERT_TRUE(EncodeValue(*schema, value, &encoded).ok());
  Slice cursor = encoded.AsSlice();
  Value decoded;
  ASSERT_TRUE(DecodeValue(*schema, &cursor, &decoded).ok());
  EXPECT_EQ(value.Compare(decoded), 0);
}

}  // namespace
}  // namespace colmr
