#include <gtest/gtest.h>

#include <tuple>

#include "cif/cif.h"
#include "cif/cof.h"
#include "cif/column_reader.h"
#include "cif/column_writer.h"
#include "cif/lazy_record.h"
#include "cif/loader.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 6;
  config.block_size = 64 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(5));
}

Value MapValue(int i, Random* rng) {
  Value::MapEntries entries;
  const char* const keys[] = {"content-type", "server", "charset", "lang"};
  for (int k = 0; k < 4; ++k) {
    entries.emplace_back(keys[(i + k) % 4],
                         Value::String(rng->NextString(3, 12)));
  }
  return Value::Map(std::move(entries));
}

// ---- Column file layer ----

class ColumnLayoutTest : public ::testing::TestWithParam<ColumnLayout> {};

TEST_P(ColumnLayoutTest, SequentialRoundTrip) {
  const ColumnLayout layout = GetParam();
  auto fs = MakeFs();
  const bool is_map = layout == ColumnLayout::kDictSkipList;
  Schema::Ptr type =
      is_map ? Schema::Map(Schema::String()) : Schema::String();
  ColumnOptions options;
  options.layout = layout;
  options.block_size = 2048;

  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(
      ColumnFileWriter::Create(fs.get(), "/c.col", type, options, &writer)
          .ok());
  Random rng(7);
  const int kRows = 3456;  // not a multiple of any skip interval
  std::vector<Value> originals;
  for (int i = 0; i < kRows; ++i) {
    originals.push_back(is_map ? MapValue(i, &rng)
                               : Value::String(rng.NextString(5, 50)));
    ASSERT_TRUE(writer->Append(originals.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->row_count(), static_cast<uint64_t>(kRows));

  std::unique_ptr<ColumnFileReader> reader;
  ASSERT_TRUE(
      ColumnFileReader::Open(fs.get(), "/c.col", ReadContext{}, &reader).ok());
  EXPECT_EQ(reader->row_count(), static_cast<uint64_t>(kRows));
  EXPECT_EQ(reader->layout(), layout);
  EXPECT_TRUE(reader->type()->Equals(*type));
  for (int i = 0; i < kRows; ++i) {
    Value v;
    ASSERT_TRUE(reader->ReadValue(&v).ok()) << "row " << i;
    EXPECT_EQ(v.Compare(originals[i]), 0) << "row " << i;
  }
  Value past;
  EXPECT_TRUE(reader->ReadValue(&past).IsOutOfRange());
}

TEST_P(ColumnLayoutTest, RandomSkipPatternsMatchSequential) {
  // Property: any interleaving of SkipRows and ReadValue observes exactly
  // the values a sequential scan would at those rows.
  const ColumnLayout layout = GetParam();
  auto fs = MakeFs();
  const bool is_map = layout == ColumnLayout::kDictSkipList;
  Schema::Ptr type = is_map ? Schema::Map(Schema::String()) : Schema::String();
  ColumnOptions options;
  options.layout = layout;
  options.block_size = 1024;

  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(
      ColumnFileWriter::Create(fs.get(), "/c.col", type, options, &writer)
          .ok());
  Random rng(8);
  const int kRows = 5000;
  std::vector<Value> originals;
  for (int i = 0; i < kRows; ++i) {
    originals.push_back(is_map ? MapValue(i, &rng)
                               : Value::String(rng.NextString(5, 30)));
    ASSERT_TRUE(writer->Append(originals.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::unique_ptr<ColumnFileReader> reader;
    ASSERT_TRUE(
        ColumnFileReader::Open(fs.get(), "/c.col", ReadContext{}, &reader)
            .ok());
    Random skip_rng(seed);
    uint64_t row = 0;
    while (row < kRows) {
      // Mixture of tiny, medium, and skip-list-sized jumps.
      uint64_t jump;
      switch (skip_rng.Uniform(4)) {
        case 0:
          jump = skip_rng.Uniform(3);
          break;
        case 1:
          jump = 5 + skip_rng.Uniform(20);
          break;
        case 2:
          jump = 80 + skip_rng.Uniform(200);
          break;
        default:
          jump = 900 + skip_rng.Uniform(1500);
          break;
      }
      jump = std::min<uint64_t>(jump, kRows - row);
      ASSERT_TRUE(reader->SkipRows(jump).ok());
      row += jump;
      if (row >= static_cast<uint64_t>(kRows)) break;
      Value v;
      ASSERT_TRUE(reader->ReadValue(&v).ok()) << "row " << row;
      EXPECT_EQ(v.Compare(originals[row]), 0) << "row " << row;
      ++row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, ColumnLayoutTest,
                         ::testing::Values(ColumnLayout::kPlain,
                                           ColumnLayout::kSkipList,
                                           ColumnLayout::kCompressedBlocks,
                                           ColumnLayout::kDictSkipList));

TEST(ColumnFileTest, SkipToExactEnd) {
  auto fs = MakeFs();
  ColumnOptions options;
  options.layout = ColumnLayout::kSkipList;
  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), "/c.col", Schema::Int32(),
                                       options, &writer)
                  .ok());
  for (int i = 0; i < 2500; ++i) {
    ASSERT_TRUE(writer->Append(Value::Int32(i)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  std::unique_ptr<ColumnFileReader> reader;
  ASSERT_TRUE(
      ColumnFileReader::Open(fs.get(), "/c.col", ReadContext{}, &reader).ok());
  ASSERT_TRUE(reader->SkipRows(2500).ok());
  EXPECT_EQ(reader->current_row(), 2500u);
  Value v;
  EXPECT_TRUE(reader->ReadValue(&v).IsOutOfRange());
  // Skipping past the end clamps.
  ASSERT_TRUE(reader->SkipRows(10).ok());
  EXPECT_EQ(reader->current_row(), 2500u);
}

TEST(ColumnFileTest, DcslRequiresMapColumn) {
  auto fs = MakeFs();
  ColumnOptions options;
  options.layout = ColumnLayout::kDictSkipList;
  std::unique_ptr<ColumnFileWriter> writer;
  EXPECT_TRUE(ColumnFileWriter::Create(fs.get(), "/c.col", Schema::Int32(),
                                       options, &writer)
                  .IsInvalidArgument());
}

TEST(ColumnFileTest, DcslCompressesRepeatedKeys) {
  // Map keys repeat across records; DCSL should store each key once per
  // group instead of once per record.
  auto fs = MakeFs();
  Schema::Ptr type = Schema::Map(Schema::Int32());
  Random rng(3);
  std::vector<Value> values;
  for (int i = 0; i < 2000; ++i) {
    Value::MapEntries entries;
    entries.emplace_back("content-type", Value::Int32(i));
    entries.emplace_back("content-length", Value::Int32(i * 2));
    entries.emplace_back("cache-control-header", Value::Int32(i * 3));
    values.push_back(Value::Map(std::move(entries)));
  }
  uint64_t sizes[2];
  int idx = 0;
  for (ColumnLayout layout :
       {ColumnLayout::kPlain, ColumnLayout::kDictSkipList}) {
    ColumnOptions options;
    options.layout = layout;
    const std::string path = "/c" + std::to_string(idx) + ".col";
    std::unique_ptr<ColumnFileWriter> writer;
    ASSERT_TRUE(
        ColumnFileWriter::Create(fs.get(), path, type, options, &writer).ok());
    for (const Value& v : values) ASSERT_TRUE(writer->Append(v).ok());
    ASSERT_TRUE(writer->Close().ok());
    ASSERT_TRUE(fs->GetFileSize(path, &sizes[idx]).ok());
    ++idx;
  }
  EXPECT_LT(sizes[1], sizes[0]);
}

TEST(ColumnFileTest, SkipListSavesWorkOnSparseAccess) {
  // The Fig. 10 mechanism: reading 1-in-1000 rows from a skip-list column
  // should fetch far fewer bytes than from a plain column.
  auto fs = MakeFs();
  Random rng(4);
  // Values sized like the paper's complex columns (KBs), so 10-row and
  // 100-row jumps land outside the 4 KB read buffer.
  std::vector<Value> values;
  for (int i = 0; i < 8000; ++i) {
    values.push_back(Value::String(rng.NextString(900, 1200)));
  }
  uint64_t bytes[2];
  int idx = 0;
  for (ColumnLayout layout : {ColumnLayout::kPlain, ColumnLayout::kSkipList}) {
    ColumnOptions options;
    options.layout = layout;
    const std::string path = "/c" + std::to_string(idx) + ".col";
    std::unique_ptr<ColumnFileWriter> writer;
    ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), path, Schema::String(),
                                         options, &writer)
                    .ok());
    for (const Value& v : values) ASSERT_TRUE(writer->Append(v).ok());
    ASSERT_TRUE(writer->Close().ok());

    IoStats stats;
    std::unique_ptr<ColumnFileReader> reader;
    ASSERT_TRUE(ColumnFileReader::Open(fs.get(), path,
                                       ReadContext{kAnyNode, &stats}, &reader)
                    .ok());
    for (uint64_t row = 0; row + 1000 <= 8000; row += 1000) {
      ASSERT_TRUE(reader->SkipRows(999).ok());
      Value v;
      ASSERT_TRUE(reader->ReadValue(&v).ok());
      EXPECT_EQ(v.Compare(values[reader->current_row() - 1]), 0);
    }
    bytes[idx] = stats.TotalBytes();
    ++idx;
  }
  EXPECT_LT(bytes[1], bytes[0] / 4);
}

// ---- COF / CIF layer ----

CofOptions SmallSplits() {
  CofOptions options;
  options.split_target_bytes = 64 * 1024;
  return options;
}

TEST(CofTest, WritesSplitDirectoriesWithSchemas) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/data/ds", schema, SmallSplits(), &writer)
          .ok());
  MicrobenchGenerator gen(21);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_GT(writer->split_count(), 1);

  std::vector<std::string> children;
  ASSERT_TRUE(fs->ListDir("/data/ds", &children).ok());
  EXPECT_EQ(static_cast<int>(children.size()), writer->split_count());
  ASSERT_TRUE(fs->ListDir("/data/ds/s0", &children).ok());
  // 13 column files + _schema
  EXPECT_EQ(children.size(), 14u);
  EXPECT_TRUE(fs->Exists("/data/ds/s0/map0.col"));
  EXPECT_TRUE(fs->Exists("/data/ds/s0/_schema"));
}

TEST(CifTest, EagerAndLazyAgreeWithSource) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<CofWriter> writer;
  CofOptions cof = SmallSplits();
  cof.default_column.layout = ColumnLayout::kSkipList;
  cof.column_overrides["map0"] = {ColumnLayout::kDictSkipList};
  ASSERT_TRUE(CofWriter::Open(fs.get(), "/ds", schema, cof, &writer).ok());
  MicrobenchGenerator gen(22);
  const int kRecords = 3000;
  std::vector<Value> originals;
  for (int i = 0; i < kRecords; ++i) {
    Value record = gen.Next();
    record.mutable_elements()->at(6) = Value::Int32(i);
    originals.push_back(record);
    ASSERT_TRUE(writer->WriteRecord(record).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  for (bool lazy : {false, true}) {
    ColumnInputFormat format;
    JobConfig config;
    config.input_paths = {"/ds"};
    config.lazy_records = lazy;
    std::vector<InputSplit> splits;
    ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
    std::vector<bool> seen(kRecords, false);
    for (const InputSplit& split : splits) {
      std::unique_ptr<RecordReader> reader;
      ASSERT_TRUE(format
                      .CreateRecordReader(fs.get(), config, split,
                                          ReadContext{}, &reader)
                      .ok());
      while (reader->Next()) {
        Record& record = reader->record();
        const int id = record.GetOrDie("int0").int32_value();
        ASSERT_GE(id, 0);
        ASSERT_LT(id, kRecords);
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
        EXPECT_EQ(record.GetOrDie("str1").Compare(originals[id].elements()[1]),
                  0);
        EXPECT_EQ(record.GetOrDie("map0").Compare(originals[id].elements()[12]),
                  0);
      }
      ASSERT_TRUE(reader->status().ok()) << reader->status().ToString();
    }
    for (int i = 0; i < kRecords; ++i) {
      EXPECT_TRUE(seen[i]) << "lazy=" << lazy << " record " << i;
    }
  }
}

TEST(CifTest, ProjectionSkipsUnprojectedFiles) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/ds", schema, SmallSplits(), &writer).ok());
  MicrobenchGenerator gen(23);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/ds"};
  config.projection = {"int0"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  for (const InputSplit& split : splits) {
    // Only the projected column file appears in the split.
    ASSERT_EQ(split.paths.size(), 1u);
    EXPECT_NE(split.paths[0].find("int0.col"), std::string::npos);
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    ASSERT_TRUE(reader->Next());
    EXPECT_EQ(reader->record().GetOrDie("int0").kind(), TypeKind::kInt32);
    // Unprojected fields materialize as Null in eager mode.
    EXPECT_TRUE(reader->record().GetOrDie("str0").is_null());
  }

  // In lazy mode an unprojected field has no column reader at all, so the
  // access is reported as NotFound.
  config.lazy_records = true;
  std::unique_ptr<RecordReader> lazy_reader;
  ASSERT_TRUE(format
                  .CreateRecordReader(fs.get(), config, splits[0],
                                      ReadContext{}, &lazy_reader)
                  .ok());
  ASSERT_TRUE(lazy_reader->Next());
  const Value* v = nullptr;
  EXPECT_TRUE(lazy_reader->record().Get("str0", &v).IsNotFound());
}

TEST(CifTest, LazyRecordSkipsUntouchedColumns) {
  // The Fig. 5 behaviour: when the map function only reads the heavy
  // column for matching records, lazy construction reads far fewer bytes.
  auto fs = MakeFs();
  Schema::Ptr schema;
  ASSERT_TRUE(
      Schema::Parse("record R { flag: int, heavy: string }", &schema).ok());
  CofOptions cof;
  cof.split_target_bytes = 16ull << 20;  // single split
  cof.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(CofWriter::Open(fs.get(), "/ds", schema, cof, &writer).ok());
  Random rng(31);
  const int kRecords = 20000;
  for (int i = 0; i < kRecords; ++i) {
    // 0.5% of records are flagged; the heavy column is ~1 KB per value
    // (like the paper's metadata/content columns), so multi-row skips
    // jump past whole read buffers.
    ASSERT_TRUE(writer
                    ->WriteRecord(Value::Record(
                        {Value::Int32(rng.OneIn(200) ? 1 : 0),
                         Value::String(rng.NextString(900, 1100))}))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  uint64_t bytes[2];
  int idx = 0;
  for (bool lazy : {false, true}) {
    ColumnInputFormat format;
    JobConfig config;
    config.input_paths = {"/ds"};
    config.lazy_records = lazy;
    std::vector<InputSplit> splits;
    ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
    IoStats stats;
    uint64_t hits = 0;
    for (const InputSplit& split : splits) {
      std::unique_ptr<RecordReader> reader;
      ASSERT_TRUE(format
                      .CreateRecordReader(fs.get(), config, split,
                                          ReadContext{kAnyNode, &stats},
                                          &reader)
                      .ok());
      while (reader->Next()) {
        if (reader->record().GetOrDie("flag").int32_value() == 1) {
          hits += reader->record().GetOrDie("heavy").string_value().size();
        }
      }
      ASSERT_TRUE(reader->status().ok());
    }
    EXPECT_GT(hits, 0u);
    bytes[idx++] = stats.TotalBytes();
  }
  EXPECT_LT(bytes[1], bytes[0] / 2)
      << "lazy=" << bytes[1] << " eager=" << bytes[0];
}

TEST(CifTest, AddColumnIsIncrementalAndReadable) {
  auto fs = MakeFs();
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record R { a: int, s: string }", &schema).ok());
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/ds", schema, SmallSplits(), &writer).ok());
  Random rng(6);
  const int kRecords = 4000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(writer
                    ->WriteRecord(Value::Record(
                        {Value::Int32(i), Value::String(rng.NextString(20, 40))}))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  // Record the bytes of the existing column files: AddColumn must not
  // rewrite any of them (CIF's advantage over RCFile, Section 4.3).
  std::vector<std::pair<std::string, uint64_t>> before;
  std::vector<std::string> subdirs;
  ASSERT_TRUE(fs->ListDir("/ds", &subdirs).ok());
  for (const std::string& sub : subdirs) {
    for (const char* col : {"a.col", "s.col"}) {
      const std::string path = "/ds/" + sub + "/" + col;
      uint64_t size;
      ASSERT_TRUE(fs->GetFileSize(path, &size).ok());
      before.emplace_back(path, size);
    }
  }

  ASSERT_TRUE(AddColumn(fs.get(), "/ds", "doubled", Schema::Int64(),
                        ColumnOptions{},
                        [](const Value& record) {
                          return Value::Int64(
                              2ll * record.elements()[0].int32_value());
                        })
                  .ok());

  for (const auto& [path, size] : before) {
    uint64_t after;
    ASSERT_TRUE(fs->GetFileSize(path, &after).ok());
    EXPECT_EQ(after, size) << path << " was rewritten";
  }

  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/ds"};
  config.projection = {"a", "doubled"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  uint64_t count = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) {
      EXPECT_EQ(reader->record().GetOrDie("doubled").int64_value(),
                2ll * reader->record().GetOrDie("a").int32_value());
      ++count;
    }
    ASSERT_TRUE(reader->status().ok());
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kRecords));

  // Adding a duplicate column is rejected.
  EXPECT_TRUE(AddColumn(fs.get(), "/ds", "doubled", Schema::Int64(),
                        ColumnOptions{},
                        [](const Value&) { return Value::Int64(0); })
                  .IsAlreadyExists());
}

TEST(CifTest, CopyDatasetBetweenFormats) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/src", schema, SmallSplits(), &writer).ok());
  MicrobenchGenerator gen(29);
  std::vector<Value> originals;
  for (int i = 0; i < 500; ++i) {
    originals.push_back(gen.Next());
    ASSERT_TRUE(writer->WriteRecord(originals.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  // CIF -> CIF copy through the generic loader.
  std::unique_ptr<CofWriter> dest;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/dst", schema, SmallSplits(), &dest).ok());
  ColumnInputFormat cif;
  ASSERT_TRUE(CopyDataset(fs.get(), &cif, {"/src"}, dest.get()).ok());
  ASSERT_TRUE(dest->Close().ok());
  EXPECT_EQ(dest->record_count(), 500u);

  JobConfig config;
  config.input_paths = {"/dst"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(cif.GetSplits(fs.get(), config, &splits).ok());
  size_t i = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(
        cif.CreateRecordReader(fs.get(), config, split, ReadContext{}, &reader)
            .ok());
    while (reader->Next()) {
      Value record;
      ASSERT_TRUE(MaterializeRecord(&reader->record(), &record).ok());
      EXPECT_EQ(record.Compare(originals[i]), 0) << "record " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, originals.size());
}

TEST(CifTest, SplitsAreColocatedUnderCpp) {
  auto fs = MakeFs();  // uses ColumnPlacementPolicy
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/ds", schema, SmallSplits(), &writer).ok());
  MicrobenchGenerator gen(30);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/ds"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  ASSERT_GT(splits.size(), 1u);
  for (const InputSplit& split : splits) {
    // CPP guarantees all column files share their replica set.
    EXPECT_EQ(split.locations.size(), 3u);
  }
}

}  // namespace
}  // namespace colmr

namespace colmr {
namespace {

TEST(CifTest, SchemaEvolutionToleranceAcrossPartitions) {
  // Two day-partitions: day2 was ingested after an AddColumn, day1 before.
  // With null_for_missing_columns the union query runs, and day1's rows
  // answer the new column with Null.
  auto fs = MakeFs();
  Schema::Ptr old_schema, new_schema;
  ASSERT_TRUE(Schema::Parse("record R { id: int, s: string }", &old_schema)
                  .ok());
  new_schema = Schema::WithField(old_schema, {"score", Schema::Int64()});

  CofOptions options;
  options.split_target_bytes = 64 * 1024;
  std::unique_ptr<CofWriter> day1, day2;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/ds/day1", old_schema, options, &day1).ok());
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/ds/day2", new_schema, options, &day2).ok());
  Random rng(12);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(day1->WriteRecord(
                        Value::Record({Value::Int32(i),
                                       Value::String(rng.NextString(5, 20))}))
                    .ok());
    ASSERT_TRUE(day2->WriteRecord(Value::Record(
                                      {Value::Int32(1000 + i),
                                       Value::String(rng.NextString(5, 20)),
                                       Value::Int64(i * 10)}))
                    .ok());
  }
  ASSERT_TRUE(day1->Close().ok());
  ASSERT_TRUE(day2->Close().ok());

  for (bool lazy : {false, true}) {
    ColumnInputFormat format;
    JobConfig config;
    config.input_paths = {"/ds/day1", "/ds/day2"};
    config.projection = {"id", "score"};
    config.lazy_records = lazy;
    config.null_for_missing_columns = true;
    std::vector<InputSplit> splits;
    ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
    int with_score = 0, without_score = 0;
    for (const InputSplit& split : splits) {
      std::unique_ptr<RecordReader> reader;
      ASSERT_TRUE(format
                      .CreateRecordReader(fs.get(), config, split,
                                          ReadContext{}, &reader)
                      .ok());
      while (reader->Next()) {
        const Value& score = reader->record().GetOrDie("score");
        const int id = reader->record().GetOrDie("id").int32_value();
        if (score.is_null()) {
          EXPECT_LT(id, 1000);
          ++without_score;
        } else {
          EXPECT_GE(id, 1000);
          EXPECT_EQ(score.int64_value(), (id - 1000) * 10);
          ++with_score;
        }
      }
      ASSERT_TRUE(reader->status().ok());
    }
    EXPECT_EQ(with_score, 300);
    EXPECT_EQ(without_score, 300);
  }

  // Without the tolerance flag the same query is rejected.
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/ds/day1"};
  config.projection = {"id", "score"};
  std::vector<InputSplit> splits;
  EXPECT_TRUE(format.GetSplits(fs.get(), config, &splits)
                  .IsInvalidArgument());

  // All projected columns missing is an error even with the flag.
  config.projection = {"score"};
  config.null_for_missing_columns = true;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  std::unique_ptr<RecordReader> reader;
  EXPECT_TRUE(format
                  .CreateRecordReader(fs.get(), config, splits[0],
                                      ReadContext{}, &reader)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace colmr
