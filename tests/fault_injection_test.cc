#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "hdfs/fault_injector.h"
#include "hdfs/mini_hdfs.h"

namespace colmr {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 5;
  config.replication = 3;
  config.block_size = 1024;
  config.io_buffer_size = 256;
  return config;
}

std::string Payload(size_t n) {
  std::string data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<char>('a' + (i * 131) % 26));
  }
  return data;
}

std::unique_ptr<MiniHdfs> MakeFs(const std::string& path,
                                 const std::string& payload) {
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<DefaultPlacementPolicy>());
  std::unique_ptr<FileWriter> writer;
  EXPECT_TRUE(fs->Create(path, &writer).ok());
  writer->Append(payload);
  EXPECT_TRUE(writer->Close().ok());
  return fs;
}

Status ReadAll(const MiniHdfs& fs, const std::string& path,
               const ReadContext& context, std::string* out) {
  std::unique_ptr<FileReader> reader;
  COLMR_RETURN_IF_ERROR(fs.Open(path, context, &reader));
  return reader->Read(0, reader->size(), out);
}

TEST(ChecksumTest, CorruptReplicaIsCaughtMarkedAndFailedOver) {
  const std::string payload = Payload(3000);  // 3 blocks
  auto fs = MakeFs("/f", payload);

  NodeId corrupt_node = kAnyNode;
  ASSERT_TRUE(fs->CorruptReplica("/f", 1, 0, &corrupt_node).ok());
  ASSERT_NE(corrupt_node, kAnyNode);

  // Read from the corrupted node itself, so its (local) replica is the
  // first candidate for block 1 — the checksum must reject it and the
  // read must fail over to a clean replica.
  IoStats stats;
  std::string got;
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{corrupt_node, &stats}, &got).ok());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_GE(stats.failover_reads, 1u);
  EXPECT_EQ(fs->bad_replica_marks(), 1u);

  // The namenode now treats the replica as missing...
  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 1u);
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  EXPECT_EQ(blocks[1].replicas.size(), 2u);
  for (NodeId node : blocks[1].replicas) EXPECT_NE(node, corrupt_node);

  // ...and re-replication replaces it from a good copy.
  ASSERT_TRUE(fs->ReReplicate().ok());
  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);

  // After repair the whole file reads cleanly from any context.
  IoStats after;
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{corrupt_node, &after}, &got).ok());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(after.checksum_failures, 0u);
}

TEST(ChecksumTest, VerificationIsCachedPerReplica) {
  const std::string payload = Payload(2048);
  auto fs = MakeFs("/f", payload);
  NodeId corrupt_node = kAnyNode;
  ASSERT_TRUE(fs->CorruptReplica("/f", 0, 0, &corrupt_node).ok());

  // Many small reads through one reader: the corrupt replica is rejected
  // once (then marked bad), not once per read.
  IoStats stats;
  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/f", ReadContext{corrupt_node, &stats}, &reader).ok());
  std::string got;
  std::string chunk;
  for (uint64_t off = 0; off < reader->size(); off += 256) {
    ASSERT_TRUE(reader->Read(off, 256, &chunk).ok());
    got += chunk;
  }
  EXPECT_EQ(got, payload);
  EXPECT_EQ(stats.checksum_failures, 1u);
}

TEST(DataLossTest, AllReplicasBadReadsAndRepairsAsDataLoss) {
  const std::string payload = Payload(800);  // 1 block
  auto fs = MakeFs("/f", payload);
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  ASSERT_EQ(blocks.size(), 1u);
  for (NodeId node : blocks[0].replicas) {
    ASSERT_TRUE(fs->MarkReplicaBad(blocks[0].id, node).ok());
  }

  std::string got;
  EXPECT_TRUE(ReadAll(*fs, "/f", ReadContext{}, &got).IsDataLoss());
  EXPECT_EQ(fs->LostBlockCount(), 1u);

  // ReReplicate must report the loss, not silently resurrect the bytes.
  Status repair = fs->ReReplicate();
  EXPECT_TRUE(repair.IsDataLoss()) << repair.ToString();
  EXPECT_EQ(fs->LostBlockCount(), 1u);
  EXPECT_TRUE(ReadAll(*fs, "/f", ReadContext{}, &got).IsDataLoss());
}

TEST(DataLossTest, LastReplicaKilledIsLost) {
  const std::string payload = Payload(500);
  auto fs = MakeFs("/f", payload);
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  for (NodeId node : blocks[0].replicas) {
    ASSERT_TRUE(fs->KillNode(node).ok());
  }
  std::string got;
  EXPECT_TRUE(ReadAll(*fs, "/f", ReadContext{}, &got).IsDataLoss());
  EXPECT_EQ(fs->LostBlockCount(), 1u);
}

TEST(TransientFaultTest, FailoverPreservesBytes) {
  const std::string payload = Payload(4096);
  auto fs = MakeFs("/f", payload);
  FaultConfig faults;
  faults.seed = 7;
  faults.read_error_p = 0.4;
  fs->SetFaultConfig(faults);

  // Each salt draws an independent deterministic schedule. Over several
  // attempts we must see (a) only correct bytes from successful reads,
  // (b) at least one failover, (c) at least one success — p = 0.4 with
  // 3 replicas fails a whole block only ~6% of the time.
  uint64_t successes = 0;
  uint64_t failovers = 0;
  for (uint64_t salt = 0; salt < 8; ++salt) {
    IoStats stats;
    std::string got;
    Status s = ReadAll(*fs, "/f", ReadContext{kAnyNode, &stats, salt}, &got);
    if (s.ok()) {
      EXPECT_EQ(got, payload);
      ++successes;
    } else {
      EXPECT_TRUE(s.IsIoError()) << s.ToString();
    }
    failovers += stats.failover_reads;
  }
  EXPECT_GT(successes, 0u);
  EXPECT_GT(failovers, 0u);
  // Transient errors never condemn replicas.
  EXPECT_EQ(fs->bad_replica_marks(), 0u);
  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);
}

TEST(TransientFaultTest, ScheduleIsDeterministic) {
  const std::string payload = Payload(4096);
  FaultConfig faults;
  faults.seed = 11;
  faults.read_error_p = 0.3;

  auto run = [&](uint64_t salt) {
    auto fs = MakeFs("/f", payload);
    fs->SetFaultConfig(faults);
    IoStats stats;
    std::string got;
    Status s = ReadAll(*fs, "/f", ReadContext{kAnyNode, &stats, salt}, &got);
    return std::make_pair(s.ok(), stats.failover_reads);
  };
  // Same salt → identical outcome across fresh filesystems; a different
  // salt (a retried attempt) draws a different schedule.
  EXPECT_EQ(run(3), run(3));
  bool any_differs = false;
  for (uint64_t salt = 0; salt < 6 && !any_differs; ++salt) {
    any_differs = run(salt) != run(salt + 100);
  }
  EXPECT_TRUE(any_differs);
}

TEST(FlakyNodeTest, FlakyServerIsAvoidedViaFailover) {
  const std::string payload = Payload(1500);
  auto fs = MakeFs("/f", payload);
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  const NodeId flaky = blocks[0].replicas[0];

  FaultConfig faults;
  faults.flaky_nodes = {flaky};
  faults.flaky_read_error_p = 1.0;  // always fails when it serves
  fs->SetFaultConfig(faults);

  // Reading *on* the flaky node: its local replica always errors, so
  // every block it holds is served remotely instead.
  IoStats stats;
  std::string got;
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{flaky, &stats}, &got).ok());
  EXPECT_EQ(got, payload);
  EXPECT_GE(stats.failover_reads, 1u);
  EXPECT_EQ(stats.local_bytes, 0u);
  EXPECT_GT(stats.remote_bytes, 0u);
}

TEST(BrokenNodeTest, ExecutionNodeCannotReadAtAll) {
  const std::string payload = Payload(600);
  auto fs = MakeFs("/f", payload);
  FaultConfig faults;
  faults.broken_nodes = {2};
  fs->SetFaultConfig(faults);

  std::string got;
  EXPECT_TRUE(ReadAll(*fs, "/f", ReadContext{2}, &got).IsIoError());
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{3}, &got).ok());
  EXPECT_EQ(got, payload);
}

TEST(SlowNodeTest, StallLatencyIsCharged) {
  const std::string payload = Payload(600);
  auto fs = MakeFs("/f", payload);
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  const NodeId slow = blocks[0].replicas[0];

  FaultConfig faults;
  faults.slow_nodes = {slow};
  faults.slow_read_latency_ms = 5;
  fs->SetFaultConfig(faults);

  IoStats stats;
  std::string got;
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{slow, &stats}, &got).ok());
  EXPECT_EQ(got, payload);
  EXPECT_DOUBLE_EQ(stats.stall_seconds, 0.005);

  // A context on a different node is served by its own first candidate;
  // reading via a node that holds no replica starts at the lowest id,
  // which may or may not be the slow node — just assert determinism.
  IoStats again;
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{slow, &again}, &got).ok());
  EXPECT_DOUBLE_EQ(again.stall_seconds, stats.stall_seconds);
}

// ---- Write-path faults (DESIGN.md §11) ----

TEST(WriteFaultTest, SealFaultMakesWriterStickyAndCharges) {
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<DefaultPlacementPolicy>());
  FaultConfig faults;
  faults.write_error_p = 1.0;
  fs->SetFaultConfig(faults);

  IoStats stats;
  WriteContext context{1, &stats, /*fault_salt=*/7};
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/w", context, &writer).ok());
  writer->Append(Payload(3000));  // 3 blocks' worth
  EXPECT_TRUE(writer->Close().IsIoError());
  // Sticky: the FIRST seal fails and the writer stays failed — one fault
  // charged, not one per block, and later Appends are dropped.
  EXPECT_EQ(stats.write_faults, 1u);
  EXPECT_FALSE(writer->status().ok());
  writer->Append("more");
  EXPECT_TRUE(writer->Close().IsIoError());

  // The torn file is what the commit protocol must hide: it exists, with
  // only the blocks sealed before the fault (none here).
  EXPECT_TRUE(fs->Exists("/w"));
}

TEST(WriteFaultTest, ScheduleIsDeterministicAndSaltKeyed) {
  FaultConfig faults;
  faults.seed = 11;
  faults.write_error_p = 0.4;
  const FaultInjector injector(faults);
  const uint64_t wkey = FaultInjector::PathKey("/out/part-r-00000");
  // Pure function of the draw coordinates.
  for (uint64_t draw = 0; draw < 8; ++draw) {
    EXPECT_EQ(injector.WriteAttemptFails(wkey, 2, 5, draw),
              injector.WriteAttemptFails(wkey, 2, 5, draw));
  }
  // A fresh attempt (new salt) draws a different schedule somewhere.
  bool any_differs = false;
  for (uint64_t draw = 0; draw < 32 && !any_differs; ++draw) {
    any_differs = injector.WriteAttemptFails(wkey, 2, 5, draw) !=
                  injector.WriteAttemptFails(wkey, 2, 6, draw);
  }
  EXPECT_TRUE(any_differs);
  EXPECT_EQ(FaultInjector::PathKey("/a"), FaultInjector::PathKey("/a"));
  EXPECT_NE(FaultInjector::PathKey("/a"), FaultInjector::PathKey("/b"));
}

TEST(WriteFaultTest, SlowWriteNodeStallsAndChargesLikeSlowReads) {
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<DefaultPlacementPolicy>());
  FaultConfig faults;
  faults.slow_write_nodes = {2};
  faults.slow_write_latency_ms = 5;
  fs->SetFaultConfig(faults);

  IoStats stats;
  WriteContext context{2, &stats};
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/w", context, &writer).ok());
  writer->Append(Payload(600));  // one block
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_DOUBLE_EQ(stats.stall_seconds, 0.005);

  // A writer on a fast node pays nothing.
  IoStats fast;
  WriteContext fast_context{3, &fast};
  ASSERT_TRUE(fs->Create("/w2", fast_context, &writer).ok());
  writer->Append(Payload(600));
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_DOUBLE_EQ(fast.stall_seconds, 0.0);
}

TEST(WriteFaultTest, WriteDeathKillsTheNodeAtFirstSeal) {
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<DefaultPlacementPolicy>());
  FaultConfig faults;
  faults.write_death_nodes = {3};
  fs->SetFaultConfig(faults);

  IoStats stats;
  WriteContext context{3, &stats};
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/w", context, &writer).ok());
  writer->Append(Payload(600));
  EXPECT_TRUE(writer->Close().IsIoError());
  EXPECT_TRUE(fs->IsNodeDead(3));
  EXPECT_EQ(stats.write_faults, 1u);

  // A retry from a surviving node succeeds.
  IoStats retry_stats;
  WriteContext retry{4, &retry_stats, /*fault_salt=*/1};
  ASSERT_TRUE(fs->Create("/w2", retry, &writer).ok());
  writer->Append(Payload(600));
  ASSERT_TRUE(writer->Close().ok());
}

TEST(WriteFaultTest, CommitDrawsAreDeterministic) {
  FaultConfig faults;
  faults.seed = 5;
  faults.task_commit_error_p = 0.5;
  faults.job_commit_error_p = 0.5;
  const FaultInjector injector(faults);
  const uint64_t key = FaultInjector::PathKey("r_00003");
  for (uint64_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(injector.TaskCommitFails(key, attempt, 0),
              injector.TaskCommitFails(key, attempt, 0));
    EXPECT_EQ(injector.JobCommitFails(7, attempt),
              injector.JobCommitFails(7, attempt));
  }
}

TEST(ReaderSnapshotTest, DeleteDuringReadIsSafe) {
  const std::string payload = Payload(2500);
  auto fs = MakeFs("/f", payload);
  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/f", ReadContext{}, &reader).ok());
  ASSERT_TRUE(fs->Delete("/f").ok());
  EXPECT_FALSE(fs->Exists("/f"));

  // The reader serves its snapshot even though the namespace entry and
  // the namenode's block-data references are gone.
  std::string got;
  ASSERT_TRUE(reader->Read(0, reader->size(), &got).ok());
  EXPECT_EQ(got, payload);
}

TEST(ImagePersistenceTest, ReplicaHealthSurvivesSaveLoad) {
  const std::string image = ::testing::TempDir() + "/colmr_fault_image.bin";
  const std::string payload = Payload(3000);
  NodeId corrupt_node = kAnyNode;
  {
    auto fs = MakeFs("/f", payload);
    ASSERT_TRUE(fs->CorruptReplica("/f", 2, 1, &corrupt_node).ok());
    std::vector<BlockInfo> blocks;
    ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
    ASSERT_TRUE(fs->MarkReplicaBad(blocks[0].id, blocks[0].replicas[0]).ok());
    ASSERT_TRUE(fs->SaveImage(image).ok());
  }
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<DefaultPlacementPolicy>());
  ASSERT_TRUE(fs->LoadImage(image).ok());

  // The bad mark survived: block 0 is still under-replicated.
  EXPECT_GE(fs->UnderReplicatedBlockCount(), 1u);

  // The corruption survived: reading on the corrupted node trips the
  // (recomputed) checksum and still returns correct bytes.
  IoStats stats;
  std::string got;
  ASSERT_TRUE(ReadAll(*fs, "/f", ReadContext{corrupt_node, &stats}, &got).ok());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(stats.checksum_failures, 1u);
  std::remove(image.c_str());
}

}  // namespace
}  // namespace colmr
