// Tests for the shared block cache and columnar readahead (DESIGN.md §9):
// BlockCache LRU/charging semantics, FileReader read-through and
// invalidation (a corrupted replica must never be served from the cache),
// asynchronous prefetch, and — the load-bearing property — byte-identical
// job output with the cache and prefetch on vs off, serial and parallel,
// with and without injected corruption.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/text/text_format.h"
#include "hdfs/block_cache.h"
#include "hdfs/reader.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

// ---- BlockCache unit tests ------------------------------------------------

std::shared_ptr<const std::string> Bytes(size_t n, char fill) {
  return std::make_shared<const std::string>(n, fill);
}

TEST(BlockCacheTest, InsertLookupEraseClear) {
  MetricsRegistry metrics;
  BlockCache cache(1 << 20, &metrics);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, Bytes(100, 'a'));
  auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, std::string(100, 'a'));
  // A different generation of the same id is a distinct entry.
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  cache.Insert(1, 1, Bytes(50, 'b'));
  EXPECT_EQ(cache.SizeBytes(), 150u);
  // Erase drops every generation of the id.
  cache.Erase(1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.SizeBytes(), 0u);
  cache.Insert(2, 0, Bytes(10, 'c'));
  cache.Insert(3, 0, Bytes(10, 'd'));
  cache.Clear();
  EXPECT_EQ(cache.SizeBytes(), 0u);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
}

TEST(BlockCacheTest, LruEvictionIsByteChargedAndTouchAware) {
  // Ids that are multiples of 8 land in one shard; total capacity 8 * 256
  // gives that shard a 256-byte budget — room for two 100-byte entries.
  MetricsRegistry metrics;
  BlockCache cache(8 * 256, &metrics);
  cache.Insert(8, 0, Bytes(100, 'a'));
  cache.Insert(16, 0, Bytes(100, 'b'));
  // Touch id 8 so id 16 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(8, 0), nullptr);
  cache.Insert(24, 0, Bytes(100, 'c'));
  EXPECT_NE(cache.Lookup(8, 0), nullptr);
  EXPECT_EQ(cache.Lookup(16, 0), nullptr);
  EXPECT_NE(cache.Lookup(24, 0), nullptr);
  EXPECT_GE(metrics.Snapshot().counters.at("hdfs.cache.evictions"), 1u);
}

TEST(BlockCacheTest, OversizedEntryIsNotAdmitted) {
  MetricsRegistry metrics;
  BlockCache cache(8 * 64, &metrics);  // 64-byte shard budget
  cache.Insert(8, 0, Bytes(100, 'x'));
  EXPECT_EQ(cache.Lookup(8, 0), nullptr);
  EXPECT_EQ(cache.SizeBytes(), 0u);
}

TEST(BlockCacheTest, MetricsCountHitsMissesAndBytes) {
  MetricsRegistry metrics;
  BlockCache cache(1 << 20, &metrics);
  cache.Insert(5, 0, Bytes(64, 'z'));
  EXPECT_EQ(cache.Lookup(9, 0), nullptr);  // miss
  EXPECT_NE(cache.Lookup(5, 0), nullptr);  // hit
  // Contains is a metrics-free probe.
  EXPECT_TRUE(cache.Contains(5, 0));
  EXPECT_FALSE(cache.Contains(9, 0));
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("hdfs.cache.hits"), 1u);
  EXPECT_EQ(snap.counters.at("hdfs.cache.misses"), 1u);
  EXPECT_EQ(snap.counters.at("hdfs.cache.hit_bytes"), 64u);
}

// ---- FileReader read-through and invalidation -----------------------------

ClusterConfig CacheCluster() {
  ClusterConfig config;
  config.num_nodes = 5;
  config.replication = 3;
  config.block_size = 1024;
  config.io_buffer_size = 256;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs(const std::string& path,
                                 const std::string& payload,
                                 ClusterConfig config = CacheCluster()) {
  auto fs = std::make_unique<MiniHdfs>(
      config, std::make_unique<DefaultPlacementPolicy>(1));
  std::unique_ptr<FileWriter> writer;
  EXPECT_TRUE(fs->Create(path, &writer).ok());
  writer->Append(payload);
  EXPECT_TRUE(writer->Close().ok());
  return fs;
}

std::string Payload(size_t n) {
  std::string payload(n, '\0');
  for (size_t i = 0; i < n; ++i) payload[i] = 'a' + (i * 131) % 26;
  return payload;
}

std::string ReadAll(MiniHdfs* fs, const std::string& path,
                    const ReadContext& context) {
  std::unique_ptr<FileReader> reader;
  EXPECT_TRUE(fs->Open(path, context, &reader).ok());
  std::string data;
  EXPECT_TRUE(reader->Read(0, reader->size(), &data).ok());
  return data;
}

TEST(CacheReadThroughTest, SecondReadHitsWithoutIoCharge) {
  const std::string payload = Payload(4000);  // 4 blocks
  auto fs = MakeFs("/f", payload);
  MetricsRegistry metrics;
  fs->EnsureBlockCache(1 << 20, &metrics);

  IoStats cold, warm;
  ReadContext context{0, &cold};
  context.metrics = &metrics;
  EXPECT_EQ(ReadAll(fs.get(), "/f", context), payload);
  EXPECT_EQ(metrics.Snapshot().counters.at("hdfs.cache.hits"), 0u);

  context.stats = &warm;
  EXPECT_EQ(ReadAll(fs.get(), "/f", context), payload);
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("hdfs.cache.hits"), 4u);
  // A memory hit has no simulated I/O cost: nothing is charged.
  EXPECT_GT(cold.local_bytes + cold.remote_bytes, 0u);
  EXPECT_EQ(warm.local_bytes + warm.remote_bytes, 0u);
}

TEST(CacheReadThroughTest, CorruptReplicaIsNeverServedFromCache) {
  const std::string payload = Payload(2048);  // 2 blocks
  auto fs = MakeFs("/f", payload);
  MetricsRegistry metrics;
  fs->EnsureBlockCache(1 << 20, &metrics);

  // Warm the cache from node 0's replicas.
  ReadContext warm_context{0, nullptr};
  warm_context.metrics = &metrics;
  EXPECT_EQ(ReadAll(fs.get(), "/f", warm_context), payload);
  EXPECT_GT(fs->block_cache()->SizeBytes(), 0u);

  // Corrupting a replica bumps the block's generation and erases the id,
  // so a reader opened afterwards takes the verifying path, catches the
  // flip, and fails over — stale cached bytes are unreachable.
  NodeId corrupt_node = kAnyNode;
  ASSERT_TRUE(fs->CorruptReplica("/f", 0, 0, &corrupt_node).ok());
  IoStats stats;
  ReadContext context{corrupt_node, &stats};
  context.metrics = &metrics;
  EXPECT_EQ(ReadAll(fs.get(), "/f", context), payload);
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_GE(stats.failover_reads, 1u);

  // The failover replica re-verified and re-populated the new generation:
  // the next reader hits and still sees pristine bytes.
  IoStats hit_stats;
  context.stats = &hit_stats;
  EXPECT_EQ(ReadAll(fs.get(), "/f", context), payload);
  EXPECT_EQ(hit_stats.checksum_failures, 0u);
  EXPECT_EQ(hit_stats.local_bytes + hit_stats.remote_bytes, 0u);
}

TEST(CacheReadThroughTest, DeleteAndReReplicateInvalidate) {
  const std::string payload = Payload(2048);
  auto fs = MakeFs("/f", payload);
  fs->EnsureBlockCache(1 << 20, nullptr);
  ReadContext context{0, nullptr};
  EXPECT_EQ(ReadAll(fs.get(), "/f", context), payload);
  EXPECT_GT(fs->block_cache()->SizeBytes(), 0u);

  // ReReplicate with nothing to repair leaves the cache warm...
  ASSERT_TRUE(fs->ReReplicate().ok());
  EXPECT_GT(fs->block_cache()->SizeBytes(), 0u);
  // ...but after a replica set actually changes, the block is dropped.
  NodeId corrupt_node = kAnyNode;
  ASSERT_TRUE(fs->CorruptReplica("/f", 0, 0, &corrupt_node).ok());
  IoStats stats;
  ReadContext corrupt_context{corrupt_node, &stats};
  EXPECT_EQ(ReadAll(fs.get(), "/f", corrupt_context), payload);  // marks bad
  EXPECT_EQ(ReadAll(fs.get(), "/f", corrupt_context), payload);  // re-warms
  ASSERT_TRUE(fs->ReReplicate().ok());

  ASSERT_TRUE(fs->Delete("/f").ok());
  EXPECT_EQ(fs->block_cache()->SizeBytes(), 0u);
}

TEST(CacheReadThroughTest, KilledNodeBytesStillServeFromCache) {
  const std::string payload = Payload(3072);  // 3 blocks
  auto fs = MakeFs("/f", payload);
  MetricsRegistry metrics;
  fs->EnsureBlockCache(1 << 20, &metrics);

  // Warm the cache, then kill a replica holder. Cached bytes were
  // checksum-verified at fill time, so the kill does NOT invalidate them:
  // the generation only moves when replica contents change, not when the
  // replica set shrinks.
  ReadContext warm{0, nullptr};
  warm.metrics = &metrics;
  EXPECT_EQ(ReadAll(fs.get(), "/f", warm), payload);
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  ASSERT_TRUE(fs->KillNode(blocks[0].replicas[0]).ok());

  IoStats stats;
  ReadContext context{blocks[0].replicas[0], &stats};
  context.metrics = &metrics;
  EXPECT_EQ(ReadAll(fs.get(), "/f", context), payload);
  EXPECT_EQ(stats.local_bytes + stats.remote_bytes, 0u);  // pure cache hits
  EXPECT_EQ(metrics.Snapshot().counters.at("hdfs.cache.hits"), 3u);

  // After repair (ReReplicate changes replica sets → generation bumps)
  // reads still return pristine bytes — never a stale mix.
  ASSERT_TRUE(fs->ReReplicate().ok());
  IoStats after;
  ReadContext repaired{1, &after};
  repaired.metrics = &metrics;
  EXPECT_EQ(ReadAll(fs.get(), "/f", repaired), payload);
}

TEST(CacheReadThroughTest, RenameIsMetadataOnlyAndKeepsCacheWarm) {
  const std::string payload = Payload(2048);
  auto fs = MakeFs("/f", payload);
  fs->EnsureBlockCache(1 << 20, nullptr);
  EXPECT_EQ(ReadAll(fs.get(), "/f", ReadContext{0, nullptr}), payload);
  const uint64_t warm_bytes = fs->block_cache()->SizeBytes();
  EXPECT_GT(warm_bytes, 0u);

  // Rename moves namespace entries only: block ids, generations, and the
  // cached verified bytes all stay valid under the new name.
  ASSERT_TRUE(fs->Rename("/f", "/g").ok());
  EXPECT_EQ(fs->block_cache()->SizeBytes(), warm_bytes);
  IoStats stats;
  EXPECT_EQ(ReadAll(fs.get(), "/g", ReadContext{0, &stats}), payload);
  EXPECT_EQ(stats.local_bytes + stats.remote_bytes, 0u);  // served warm
}

TEST(CacheReadThroughTest, BufferedReaderServesViewsAcrossBlockBoundaries) {
  // Stream the file through BufferedReader twice; the second pass runs in
  // pinned zero-copy mode and must yield identical bytes, including
  // values straddling cached-block boundaries.
  const std::string payload = Payload(4096 + 700);
  auto fs = MakeFs("/f", payload);
  fs->EnsureBlockCache(1 << 20, nullptr);
  for (int pass = 0; pass < 2; ++pass) {
    ReadContext context{0, nullptr};
    std::unique_ptr<FileReader> file;
    ASSERT_TRUE(fs->Open("/f", context, &file).ok());
    BufferedReader reader(std::move(file), 256);
    std::string got, chunk;
    // Odd chunk size so reads straddle both buffer and block boundaries.
    while (!reader.AtEnd()) {
      size_t n = std::min<uint64_t>(331, reader.Remaining());
      ASSERT_TRUE(reader.ReadBytes(n, &chunk).ok());
      got += chunk;
    }
    EXPECT_EQ(got, payload) << "pass " << pass;
  }
}

// ---- Job-level: prefetch counters and byte-identical output ---------------

ClusterConfig JobCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.map_slots_per_node = 2;
  config.block_size = 16 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

void WriteSentences(MiniHdfs* fs, const std::string& path, int count) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record S { text: string }", &schema).ok());
  std::unique_ptr<TextWriter> writer;
  ASSERT_TRUE(TextWriter::Open(fs, path, schema, &writer).ok());
  const char* lines[] = {"the quick brown fox jumps", "over the lazy dog",
                         "pack my box with five dozen", "liquor jugs the fox"};
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(
        writer->WriteRecord(Value::Record({Value::String(lines[i % 4])})).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

Job WordCountJob() {
  Job job;
  job.config.input_paths = {"/in"};
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    std::istringstream words(record.GetOrDie("text").string_value());
    std::string word;
    while (words >> word) {
      out->Emit(Value::String(word), Value::Int64(1));
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t sum = 0;
    for (const Value& v : values) sum += v.int64_value();
    out->Emit(key, Value::Int64(sum));
  };
  job.combiner = job.reducer;
  return job;
}

// Output comparison only: with the cache on, IoStats legitimately differ
// (hits charge no bytes), so unlike the parallel-engine equivalence tests
// this deliberately does not compare I/O accounting.
void ExpectSameOutput(const JobReport& a, const JobReport& b) {
  EXPECT_EQ(a.map_input_records, b.map_input_records);
  EXPECT_EQ(a.map_output_records, b.map_output_records);
  EXPECT_EQ(a.reduce_output_records, b.reduce_output_records);
  ASSERT_EQ(a.output.size(), b.output.size());
  for (size_t i = 0; i < a.output.size(); ++i) {
    EXPECT_EQ(a.output[i].first.Compare(b.output[i].first), 0) << "key " << i;
    EXPECT_EQ(a.output[i].second.Compare(b.output[i].second), 0)
        << "value " << i;
  }
}

TEST(CacheJobTest, OutputIdenticalWithCacheAndPrefetchOnVsOff) {
  for (int parallelism : {1, 3}) {
    auto fs = std::make_unique<MiniHdfs>(
        JobCluster(), std::make_unique<ColumnPlacementPolicy>(17));
    WriteSentences(fs.get(), "/in", 3000);
    JobRunner runner(fs.get());

    Job off = WordCountJob();
    off.config.parallelism = parallelism;
    JobReport off_report;
    ASSERT_TRUE(runner.Run(off, &off_report).ok());

    Job on = WordCountJob();
    on.config.parallelism = parallelism;
    on.config.cache_bytes = 8 << 20;
    on.config.readahead_bytes = 16 * 1024;
    on.config.prefetch_depth = 2;
    JobReport cold_report, warm_report;
    ASSERT_TRUE(runner.Run(on, &cold_report).ok());
    ASSERT_TRUE(runner.Run(on, &warm_report).ok());

    ExpectSameOutput(off_report, cold_report);
    ExpectSameOutput(off_report, warm_report);
  }
}

TEST(CacheJobTest, OutputIdenticalUnderCorruptionWithCacheOn) {
  for (int parallelism : {1, 3}) {
    auto fs = std::make_unique<MiniHdfs>(
        JobCluster(), std::make_unique<ColumnPlacementPolicy>(17));
    WriteSentences(fs.get(), "/in", 3000);
    ASSERT_TRUE(fs->CorruptReplica("/in/part-00000", 0, 0).ok());
    JobRunner runner(fs.get());

    Job off = WordCountJob();
    off.config.parallelism = parallelism;
    JobReport off_report;
    ASSERT_TRUE(runner.Run(off, &off_report).ok());
    EXPECT_GE(off_report.checksum_failures + off_report.failover_reads, 0u);

    Job on = WordCountJob();
    on.config.parallelism = parallelism;
    on.config.cache_bytes = 8 << 20;
    on.config.readahead_bytes = 16 * 1024;
    on.config.prefetch_depth = 2;
    JobReport on_report, warm_report;
    ASSERT_TRUE(runner.Run(on, &on_report).ok());
    ASSERT_TRUE(runner.Run(on, &warm_report).ok());

    ExpectSameOutput(off_report, on_report);
    ExpectSameOutput(off_report, warm_report);
  }
}

TEST(CacheJobTest, CifScanIssuesPrefetchAndHitsOnRescan) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 32 * 1024;
  config.io_buffer_size = 4 * 1024;
  auto fs = std::make_unique<MiniHdfs>(
      config, std::make_unique<ColumnPlacementPolicy>(23));
  Schema::Ptr schema = CrawlSchema();

  CrawlGeneratorOptions gen_options;
  gen_options.min_content_bytes = 300;
  gen_options.max_content_bytes = 800;
  CrawlGenerator gen(77, gen_options);
  CofOptions cof_options;
  cof_options.split_target_bytes = 128 * 1024;
  cof_options.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> cof;
  ASSERT_TRUE(CofWriter::Open(fs.get(), "/cif", schema, cof_options, &cof).ok());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(cof->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(cof->Close().ok());

  MetricsRegistry metrics;
  Job job;
  job.config.input_paths = {"/cif"};
  // Eager records over a multi-block column: the content column file
  // spans several HDFS blocks per split, so the sequential scan has
  // blocks ahead of it to warm.
  job.config.projection = {"url", "content"};
  job.config.lazy_records = false;
  job.config.cache_bytes = 16 << 20;
  job.config.readahead_bytes = 16 * 1024;
  job.config.prefetch_depth = 3;
  job.config.metrics = &metrics;
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(Value::Int64(0),
              Value::Int64(static_cast<int64_t>(
                  record.GetOrDie("url").string_value().size() +
                  record.GetOrDie("content").string_value().size())));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t sum = 0;
    for (const Value& v : values) sum += v.int64_value();
    out->Emit(key, Value::Int64(sum));
  };

  JobRunner runner(fs.get());
  JobReport cold, warm;
  ASSERT_TRUE(runner.Run(job, &cold).ok());
  MetricsSnapshot after_cold = metrics.Snapshot();
  EXPECT_GT(after_cold.counters.at("cif.prefetch.issued"), 0u);
  EXPECT_GT(after_cold.counters.at("cif.prefetch.blocks"), 0u);

  ASSERT_TRUE(runner.Run(job, &warm).ok());
  MetricsSnapshot after_warm = metrics.Snapshot();
  EXPECT_GT(after_warm.counters.at("hdfs.cache.hits"), 0u);
  ExpectSameOutput(cold, warm);
}

}  // namespace
}  // namespace colmr
