#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cif/cif.h"
#include "cif/cof.h"
#include "cif/loader.h"
#include "formats/rcfile/rcfile_format.h"
#include "formats/seq/seq_format.h"
#include "formats/text/text_format.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

// End-to-end cross-format test: the paper's Section 6.3 job — distinct
// content-types of pages whose URL contains "ibm.com/jp" — must produce
// identical output whatever the storage format or record-construction
// strategy. This pins the semantics that all the performance comparisons
// rely on.

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 256 * 1024;
  config.io_buffer_size = 16 * 1024;
  return config;
}

class CrawlJobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(23));
    schema_ = CrawlSchema();

    CrawlGeneratorOptions gen_options;
    gen_options.jp_selectivity = 0.10;
    gen_options.min_content_bytes = 300;  // keep the test dataset small
    gen_options.max_content_bytes = 800;
    CrawlGenerator gen(77, gen_options);
    const int kRecords = 800;
    records_.reserve(kRecords);
    for (int i = 0; i < kRecords; ++i) records_.push_back(gen.Next());

    // Write the same records in every format.
    std::unique_ptr<TextWriter> txt;
    ASSERT_TRUE(TextWriter::Open(fs_.get(), "/txt", schema_, &txt).ok());
    std::unique_ptr<SeqWriter> seq;
    ASSERT_TRUE(
        SeqWriter::Open(fs_.get(), "/seq", schema_, SeqWriterOptions{}, &seq)
            .ok());
    SeqWriterOptions seq_block;
    seq_block.compression = SeqCompression::kBlock;
    std::unique_ptr<SeqWriter> seqc;
    ASSERT_TRUE(
        SeqWriter::Open(fs_.get(), "/seqc", schema_, seq_block, &seqc).ok());
    RcFileWriterOptions rc_options;
    rc_options.row_group_size = 64 * 1024;
    std::unique_ptr<RcFileWriter> rc;
    ASSERT_TRUE(
        RcFileWriter::Open(fs_.get(), "/rc", schema_, rc_options, &rc).ok());
    CofOptions cof_options;
    cof_options.split_target_bytes = 256 * 1024;
    cof_options.default_column.layout = ColumnLayout::kSkipList;
    cof_options.column_overrides["metadata"] = {ColumnLayout::kDictSkipList};
    std::unique_ptr<CofWriter> cof;
    ASSERT_TRUE(
        CofWriter::Open(fs_.get(), "/cif", schema_, cof_options, &cof).ok());

    for (const Value& record : records_) {
      ASSERT_TRUE(txt->WriteRecord(record).ok());
      ASSERT_TRUE(seq->WriteRecord(record).ok());
      ASSERT_TRUE(seqc->WriteRecord(record).ok());
      ASSERT_TRUE(rc->WriteRecord(record).ok());
      ASSERT_TRUE(cof->WriteRecord(record).ok());
    }
    ASSERT_TRUE(txt->Close().ok());
    ASSERT_TRUE(seq->Close().ok());
    ASSERT_TRUE(seqc->Close().ok());
    ASSERT_TRUE(rc->Close().ok());
    ASSERT_TRUE(cof->Close().ok());
  }

  std::set<std::string> ExpectedContentTypes() const {
    std::set<std::string> expected;
    for (const Value& record : records_) {
      if (record.elements()[0].string_value().find(kCrawlFilterPattern) !=
          std::string::npos) {
        const Value* ct = record.elements()[4].FindMapEntry(kContentTypeKey);
        if (ct != nullptr) expected.insert(ct->string_value());
      }
    }
    return expected;
  }

  // Runs the paper's job (Fig. 1) and returns the distinct content-types.
  std::set<std::string> RunJob(std::shared_ptr<InputFormat> format,
                               const std::string& path, bool project,
                               bool lazy, JobReport* report) {
    Job job;
    job.config.input_paths = {path};
    if (project) job.config.projection = {"url", "metadata"};
    job.config.lazy_records = lazy;
    job.input_format = std::move(format);
    job.mapper = [](Record& record, Emitter* out) {
      const std::string& url = record.GetOrDie("url").string_value();
      if (url.find(kCrawlFilterPattern) != std::string::npos) {
        const Value* ct =
            record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
        if (ct != nullptr) {
          out->Emit(Value::String(ct->string_value()), Value::Null());
        }
      }
    };
    job.reducer = [](const Value& key, const std::vector<Value>&,
                     Emitter* out) { out->Emit(key, Value::Null()); };
    JobRunner runner(fs_.get());
    Status s = runner.Run(job, report);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::set<std::string> result;
    for (const auto& [key, value] : report->output) {
      result.insert(key.string_value());
    }
    return result;
  }

  std::unique_ptr<MiniHdfs> fs_;
  Schema::Ptr schema_;
  std::vector<Value> records_;
};

TEST_F(CrawlJobTest, AllFormatsProduceIdenticalResults) {
  const std::set<std::string> expected = ExpectedContentTypes();
  ASSERT_FALSE(expected.empty());

  JobReport report;
  EXPECT_EQ(RunJob(std::make_shared<TextInputFormat>(), "/txt", false, false,
                   &report),
            expected);
  EXPECT_EQ(RunJob(std::make_shared<SeqInputFormat>(), "/seq", false, false,
                   &report),
            expected);
  EXPECT_EQ(RunJob(std::make_shared<SeqInputFormat>(), "/seqc", false, false,
                   &report),
            expected);
  EXPECT_EQ(RunJob(std::make_shared<RcFileInputFormat>(), "/rc", true, false,
                   &report),
            expected);
  EXPECT_EQ(RunJob(std::make_shared<ColumnInputFormat>(), "/cif", true, false,
                   &report),
            expected);
  EXPECT_EQ(RunJob(std::make_shared<ColumnInputFormat>(), "/cif", true, true,
                   &report),
            expected);
}

TEST_F(CrawlJobTest, CifReadsFarFewerBytesThanSeq) {
  // The core Table 1 effect: the projected CIF job must not read the
  // content column at all, while SEQ reads everything.
  JobReport seq_report, cif_report;
  RunJob(std::make_shared<SeqInputFormat>(), "/seq", false, false,
         &seq_report);
  RunJob(std::make_shared<ColumnInputFormat>(), "/cif", true, true,
         &cif_report);
  EXPECT_LT(cif_report.BytesRead() * 3, seq_report.BytesRead());
}

TEST_F(CrawlJobTest, FormatConversionPreservesRecords) {
  // TXT -> SEQ -> CIF -> RCFile loader chain reproduces the original
  // records bit-for-bit (modulo nothing: Value comparison is exact).
  SeqWriterOptions seq_options;
  std::unique_ptr<SeqWriter> seq;
  ASSERT_TRUE(
      SeqWriter::Open(fs_.get(), "/conv_seq", schema_, seq_options, &seq)
          .ok());
  TextInputFormat txt;
  ASSERT_TRUE(CopyDataset(fs_.get(), &txt, {"/txt"}, seq.get()).ok());
  ASSERT_TRUE(seq->Close().ok());

  CofOptions cof_options;
  std::unique_ptr<CofWriter> cof;
  ASSERT_TRUE(
      CofWriter::Open(fs_.get(), "/conv_cif", schema_, cof_options, &cof)
          .ok());
  SeqInputFormat seq_format;
  ASSERT_TRUE(CopyDataset(fs_.get(), &seq_format, {"/conv_seq"}, cof.get())
                  .ok());
  ASSERT_TRUE(cof->Close().ok());

  ColumnInputFormat cif;
  JobConfig config;
  config.input_paths = {"/conv_cif"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(cif.GetSplits(fs_.get(), config, &splits).ok());
  std::vector<Value> read_back;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(
        cif.CreateRecordReader(fs_.get(), config, split, ReadContext{}, &reader)
            .ok());
    while (reader->Next()) {
      Value record;
      ASSERT_TRUE(MaterializeRecord(&reader->record(), &record).ok());
      read_back.push_back(std::move(record));
    }
    ASSERT_TRUE(reader->status().ok());
  }
  ASSERT_EQ(read_back.size(), records_.size());
  // SEQ splits may reorder across files, but here there is a single part
  // file, so order is preserved end to end.
  for (size_t i = 0; i < records_.size(); ++i) {
    EXPECT_EQ(read_back[i].Compare(records_[i]), 0) << "record " << i;
  }
}

}  // namespace
}  // namespace colmr
