#!/usr/bin/env bash
# CI entry point: builds and runs the full test suite three ways —
# plain, under ThreadSanitizer (the parallel engine's data-race gate),
# and under AddressSanitizer. Usage:
#
#   tools/check.sh            # all three configurations
#   tools/check.sh plain      # just the normal build
#   tools/check.sh thread     # just the TSan build
#   tools/check.sh address    # just the ASan build
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
if [[ $# -gt 0 ]]; then MODES=("$@"); else MODES=(plain thread address); fi

run_mode() {
  local mode="$1" dir sanitize
  case "$mode" in
    plain)   dir=build          sanitize="" ;;
    thread)  dir=build-tsan     sanitize=thread ;;
    address) dir=build-asan     sanitize=address ;;
    *) echo "unknown mode: $mode (want plain|thread|address)" >&2; exit 2 ;;
  esac
  echo "=== [$mode] configure + build ($dir) ==="
  cmake -B "$dir" -S . -DCOLMR_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$mode] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

for mode in "${MODES[@]}"; do
  run_mode "$mode"
done
echo "=== all checks passed ==="
