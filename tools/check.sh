#!/usr/bin/env bash
# CI entry point: builds and runs the full test suite four ways —
# plain, under ThreadSanitizer (the parallel engine's data-race gate),
# under AddressSanitizer, and under UndefinedBehaviorSanitizer (the
# decode-path gate: shifts/overflows on untrusted bytes). Usage:
#
#   tools/check.sh            # all four configurations
#   tools/check.sh plain      # just the normal build
#   tools/check.sh thread     # just the TSan build
#   tools/check.sh address    # just the ASan build
#   tools/check.sh undefined  # just the UBSan build
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
if [[ $# -gt 0 ]]; then MODES=("$@"); else MODES=(plain thread address undefined); fi

run_mode() {
  local mode="$1" dir sanitize
  case "$mode" in
    plain)     dir=build        sanitize="" ;;
    thread)    dir=build-tsan   sanitize=thread ;;
    address)   dir=build-asan   sanitize=address ;;
    undefined) dir=build-ubsan  sanitize=undefined ;;
    *) echo "unknown mode: $mode (want plain|thread|address|undefined)" >&2; exit 2 ;;
  esac
  echo "=== [$mode] configure + build ($dir) ==="
  cmake -B "$dir" -S . -DCOLMR_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$mode] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

for mode in "${MODES[@]}"; do
  run_mode "$mode"
done
echo "=== all checks passed ==="
