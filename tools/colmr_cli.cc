// colmr — command-line companion for the library. Operates on a persisted
// MiniHdfs image file, so datasets survive across invocations:
//
//   colmr init  <image> [num_nodes]             create an empty filesystem
//   colmr gen   <image> <path> <kind> <n> [sel] generate a dataset
//                 kind: crawl | weblog | micro | zoned  (written as CIF;
//                 zoned has a monotone `seq` key, so zone maps prune it)
//   colmr ls    <image> [path]                  list a directory
//   colmr stat  <image>                         cluster and space summary
//   colmr schema <image> <dataset>              print the dataset schema
//   colmr head  <image> <dataset> [n]           print the first n records
//   colmr convert <image> <src> <dst> <fmt>     copy between formats
//                 fmt: txt | seq | seq-block | rcfile | rcfile-zlite |
//                      cif | cif-sl | cif-dcsl
//   colmr kill  <image> <node>                  fail a datanode
//   colmr rerep <image>                         re-replicate lost replicas
//   colmr corrupt <image> <file> <block> <replica>
//                                               flip a bit in one replica
//   colmr scan  <image> <dataset> [p] [--batch-rows=N] [--out=PATH]
//               [--where=EXPR] [--no-pushdown]
//               [--speculative] [--task-timeout-ms=N]
//               [--sort-buffer-kb=N] [--merge-factor=N] [--spill-codec=C]
//               [--write-error-p=P] [--task-commit-error-p=P]
//               [--job-commit-error-p=P] [--slow-write-node=N]
//               [--slow-write-ms=MS] [--write-death-node=N]
//                                               run a scan job; with p > 0,
//                                               inject transient read
//                                               errors with probability p
//                                               (--batch-rows=1 disables
//                                               the vectorized map loop).
//                                               --out turns the scan into a
//                                               record-count MapReduce job
//                                               whose output commits
//                                               atomically to PATH
//                                               (DESIGN.md §11); the
//                                               remaining flags inject
//                                               write/commit faults and
//                                               enable the straggler
//                                               defenses.
//                                               --sort-buffer-kb > 0 runs
//                                               the bounded-memory external
//                                               sort-merge shuffle
//                                               (DESIGN.md §12); codec C is
//                                               none | lzf | zlite
//   colmr stats <image> <dataset> [--json] [--lazy] [--project=c1,c2]
//               [--cache-mb=N] [--readahead-kb=N] [--prefetch-depth=N]
//               [--batch-rows=N] [--where=EXPR] [--no-pushdown]
//                                               print the per-column
//                                               zone-map summary of a CIF
//                                               dataset, then run a scan
//                                               job and dump the metrics
//                                               delta it produced
//                                               (cache/readahead knobs:
//                                               DESIGN.md §9; predicate
//                                               pushdown: DESIGN.md §13.
//                                               --where filters the scan,
//                                               e.g. --where='seq < 100';
//                                               --no-pushdown keeps the
//                                               filter in the map loop)
//   colmr trace <image> <dataset> <out.json> [--lazy] [--project=c1,c2]
//               [--cache-mb=N] [--readahead-kb=N] [--prefetch-depth=N]
//               [--batch-rows=N]
//                                               run a scan job and write its
//                                               span timeline as Chrome
//                                               trace_event JSON (open at
//                                               https://ui.perfetto.dev)
//
// Example session:
//   colmr init /tmp/fs.img 8
//   colmr gen /tmp/fs.img /crawl crawl 20000
//   colmr schema /tmp/fs.img /crawl
//   colmr head /tmp/fs.img /crawl 3
//   colmr convert /tmp/fs.img /crawl /crawl-seq seq
//   colmr stat /tmp/fs.img

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cif/cof.h"
#include "cif/column_format.h"
#include "cif/column_stats.h"
#include "cif/loader.h"
#include "formats/detect.h"
#include "formats/rcfile/rcfile.h"
#include "formats/seq/seq_file.h"
#include "formats/text/text_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "mapreduce/job.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/predicate.h"
#include "workload/crawl.h"
#include "workload/synthetic.h"
#include "workload/weblog.h"

namespace colmr {
namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: colmr <init|gen|ls|stat|schema|head|convert|kill|"
               "rerep|corrupt|scan|stats|trace> <image> [args...]\n(see the "
               "header of tools/colmr_cli.cc for details)\n");
  return 2;
}

/// Parses --where=EXPR into JobConfig::predicate (DESIGN.md §13).
Status SetWhere(const std::string& where, bool pushdown, JobConfig* config) {
  if (where.empty()) return Status::OK();
  Predicate predicate;
  COLMR_RETURN_IF_ERROR(ParsePredicate(where, &predicate));
  config->predicate = std::make_shared<const Predicate>(std::move(predicate));
  config->predicate_pushdown = pushdown;
  return Status::OK();
}

std::unique_ptr<MiniHdfs> LoadFs(const std::string& image, Status* status) {
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<ColumnPlacementPolicy>());
  *status = fs->LoadImage(image);
  return fs;
}

int CmdInit(const std::string& image, int argc, char** argv) {
  ClusterConfig config;
  if (argc > 0) config.num_nodes = std::atoi(argv[0]);
  MiniHdfs fs(config, std::make_unique<ColumnPlacementPolicy>());
  Status s = fs.SaveImage(image);
  if (!s.ok()) return Fail(s);
  std::printf("created %s: %d nodes, %d-way replication, %llu-byte blocks\n",
              image.c_str(), config.num_nodes, config.replication,
              static_cast<unsigned long long>(config.block_size));
  return 0;
}

int CmdGen(const std::string& image, int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[0];
  const std::string kind = argv[1];
  const uint64_t n = std::strtoull(argv[2], nullptr, 10);
  const double selectivity = argc > 3 ? std::atof(argv[3]) : 0.06;

  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);

  Schema::Ptr schema;
  std::function<Value()> next;
  std::shared_ptr<void> keepalive;
  if (kind == "crawl") {
    schema = CrawlSchema();
    CrawlGeneratorOptions options;
    options.jp_selectivity = selectivity;
    auto gen = std::make_shared<CrawlGenerator>(42, options);
    keepalive = gen;
    next = [gen] { return gen->Next(); };
  } else if (kind == "weblog") {
    schema = WeblogSchema();
    auto gen = std::make_shared<WeblogGenerator>(42);
    keepalive = gen;
    next = [gen] { return gen->Next(); };
  } else if (kind == "micro") {
    schema = MicrobenchSchema();
    auto gen = std::make_shared<MicrobenchGenerator>(42, selectivity);
    keepalive = gen;
    next = [gen] { return gen->Next(); };
  } else if (kind == "zoned") {
    // Monotone `seq` key: zone maps on it actually prune, so this is the
    // dataset to demo `--where='seq < N'` / `colmr stats` against.
    schema = ZonedSchema();
    auto gen = std::make_shared<ZonedGenerator>(42);
    keepalive = gen;
    next = [gen] { return gen->Next(); };
  } else {
    return Usage();
  }

  CofOptions options;
  options.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> writer;
  s = CofWriter::Open(fs.get(), path, schema, options, &writer);
  if (!s.ok()) return Fail(s);
  for (uint64_t i = 0; i < n; ++i) {
    s = writer->WriteRecord(next());
    if (!s.ok()) return Fail(s);
  }
  s = writer->Close();
  if (!s.ok()) return Fail(s);
  s = fs->SaveImage(image);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %llu %s records to %s (%d split-directories)\n",
              static_cast<unsigned long long>(n), kind.c_str(), path.c_str(),
              writer->split_count());
  return 0;
}

int CmdLs(const std::string& image, int argc, char** argv) {
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  const std::string path = argc > 0 ? argv[0] : "/";
  std::vector<std::string> children;
  s = fs->ListDir(path, &children);
  if (!s.ok()) return Fail(s);
  for (const std::string& child : children) {
    const std::string full = (path == "/" ? "" : path) + "/" + child;
    uint64_t size = 0;
    if (fs->GetFileSize(full, &size).ok()) {
      std::printf("%12llu  %s\n", static_cast<unsigned long long>(size),
                  child.c_str());
    } else {
      std::printf("%12s  %s/\n", "-", child.c_str());
    }
  }
  return 0;
}

int CmdStat(const std::string& image) {
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  std::printf("nodes: %d (%zu dead)\nreplication: %d\nblock size: %llu\n"
              "stored bytes (pre-replication): %llu\nunder-replicated "
              "blocks: %llu\nlost blocks: %llu\n",
              fs->config().num_nodes, fs->dead_nodes().size(),
              fs->config().replication,
              static_cast<unsigned long long>(fs->config().block_size),
              static_cast<unsigned long long>(fs->TotalStoredBytes()),
              static_cast<unsigned long long>(fs->UnderReplicatedBlockCount()),
              static_cast<unsigned long long>(fs->LostBlockCount()));
  return 0;
}

int CmdSchema(const std::string& image, int argc, char** argv) {
  if (argc < 1) return Usage();
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  // CIF keeps the schema per split-directory; row formats at the root.
  Schema::Ptr schema;
  s = ReadDatasetSchema(fs.get(), argv[0], &schema);
  if (s.ok()) {
    std::printf("%s\n", schema->ToString().c_str());
    return 0;
  }
  std::vector<std::string> children;
  Status list_status = fs->ListDir(argv[0], &children);
  if (!list_status.ok()) return Fail(list_status);
  for (const std::string& child : children) {
    if (ReadDatasetSchema(fs.get(), std::string(argv[0]) + "/" + child,
                          &schema)
            .ok()) {
      std::printf("%s\n", schema->ToString().c_str());
      return 0;
    }
  }
  return Fail(Status::NotFound("no schema under that path"));
}

int CmdHead(const std::string& image, int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string path = argv[0];
  const uint64_t limit = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);

  std::shared_ptr<InputFormat> format;
  std::string name;
  s = DetectInputFormat(fs.get(), path, &format, &name);
  if (!s.ok()) return Fail(s);
  std::fprintf(stderr, "(format: %s)\n", name.c_str());

  JobConfig config;
  config.input_paths = {path};
  std::vector<InputSplit> splits;
  s = format->GetSplits(fs.get(), config, &splits);
  if (!s.ok()) return Fail(s);
  uint64_t printed = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    s = format->CreateRecordReader(fs.get(), config, split, ReadContext{},
                                   &reader);
    if (!s.ok()) return Fail(s);
    while (printed < limit && reader->Next()) {
      Value record;
      s = MaterializeRecord(&reader->record(), &record);
      if (!s.ok()) return Fail(s);
      std::printf("%s\n", record.ToString().c_str());
      ++printed;
    }
    if (!reader->status().ok()) return Fail(reader->status());
    if (printed >= limit) break;
  }
  return 0;
}

int CmdConvert(const std::string& image, int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string src = argv[0];
  const std::string dst = argv[1];
  const std::string fmt = argv[2];
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);

  std::shared_ptr<InputFormat> input;
  s = DetectInputFormat(fs.get(), src, &input, nullptr);
  if (!s.ok()) return Fail(s);

  // Schema of the source: per split-directory for CIF, at the root
  // otherwise.
  Schema::Ptr schema;
  if (!ReadDatasetSchema(fs.get(), src, &schema).ok()) {
    std::vector<std::string> children;
    s = fs->ListDir(src, &children);
    if (!s.ok()) return Fail(s);
    bool found = false;
    for (const std::string& child : children) {
      if (ReadDatasetSchema(fs.get(), src + "/" + child, &schema).ok()) {
        found = true;
        break;
      }
    }
    if (!found) return Fail(Status::NotFound("source schema"));
  }

  std::unique_ptr<DatasetWriter> writer;
  if (fmt == "txt") {
    std::unique_ptr<TextWriter> w;
    s = TextWriter::Open(fs.get(), dst, schema, &w);
    writer = std::move(w);
  } else if (fmt == "seq" || fmt == "seq-block") {
    SeqWriterOptions options;
    if (fmt == "seq-block") options.compression = SeqCompression::kBlock;
    std::unique_ptr<SeqWriter> w;
    s = SeqWriter::Open(fs.get(), dst, schema, options, &w);
    writer = std::move(w);
  } else if (fmt == "rcfile" || fmt == "rcfile-zlite") {
    RcFileWriterOptions options;
    if (fmt == "rcfile-zlite") options.codec = CodecType::kZlite;
    std::unique_ptr<RcFileWriter> w;
    s = RcFileWriter::Open(fs.get(), dst, schema, options, &w);
    writer = std::move(w);
  } else if (fmt == "cif" || fmt == "cif-sl" || fmt == "cif-dcsl") {
    CofOptions options;
    if (fmt != "cif") {
      options.default_column.layout = ColumnLayout::kSkipList;
    }
    if (fmt == "cif-dcsl") {
      for (const auto& field : schema->fields()) {
        if (field.type->kind() == TypeKind::kMap) {
          options.column_overrides[field.name] = {
              ColumnLayout::kDictSkipList, CodecType::kNone, 0};
        }
      }
    }
    std::unique_ptr<CofWriter> w;
    s = CofWriter::Open(fs.get(), dst, schema, options, &w);
    writer = std::move(w);
  } else {
    return Usage();
  }
  if (!s.ok()) return Fail(s);

  s = CopyDataset(fs.get(), input.get(), {src}, writer.get());
  if (!s.ok()) return Fail(s);
  s = writer->Close();
  if (!s.ok()) return Fail(s);
  s = fs->SaveImage(image);
  if (!s.ok()) return Fail(s);
  std::printf("converted %s -> %s (%s, %llu records)\n", src.c_str(),
              dst.c_str(), fmt.c_str(),
              static_cast<unsigned long long>(writer->record_count()));
  return 0;
}

int CmdKill(const std::string& image, int argc, char** argv) {
  if (argc < 1) return Usage();
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  s = fs->KillNode(std::atoi(argv[0]));
  if (!s.ok()) return Fail(s);
  s = fs->SaveImage(image);
  if (!s.ok()) return Fail(s);
  std::printf("node %s is dead; %llu blocks under-replicated\n", argv[0],
              static_cast<unsigned long long>(
                  fs->UnderReplicatedBlockCount()));
  return 0;
}

int CmdRerep(const std::string& image) {
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  const uint64_t before = fs->UnderReplicatedBlockCount();
  s = fs->ReReplicate();
  if (!s.ok()) return Fail(s);
  s = fs->SaveImage(image);
  if (!s.ok()) return Fail(s);
  std::printf("re-replicated %llu blocks; %llu remain under-replicated\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(
                  fs->UnderReplicatedBlockCount()));
  return 0;
}

int CmdCorrupt(const std::string& image, int argc, char** argv) {
  if (argc < 3) return Usage();
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  NodeId node = kAnyNode;
  s = fs->CorruptReplica(argv[0], std::strtoull(argv[1], nullptr, 10),
                         std::strtoull(argv[2], nullptr, 10), &node);
  if (!s.ok()) return Fail(s);
  s = fs->SaveImage(image);
  if (!s.ok()) return Fail(s);
  std::printf("corrupted block %s of %s on node %d\n", argv[1], argv[0],
              node);
  return 0;
}

int CmdScan(const std::string& image, int argc, char** argv) {
  uint64_t batch_rows = 0;
  std::string out_path;
  std::string where;
  bool pushdown = true;
  bool speculative = false;
  int task_timeout_ms = 0;
  uint64_t sort_buffer_kb = 0;
  int merge_factor = 0;
  std::string spill_codec;
  FaultConfig faults;
  std::vector<std::string> positional;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--batch-rows=", 0) == 0) {
      batch_rows = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--where=", 0) == 0) {
      where = arg.substr(8);
    } else if (arg == "--no-pushdown") {
      pushdown = false;
    } else if (arg == "--speculative") {
      speculative = true;
    } else if (arg.rfind("--task-timeout-ms=", 0) == 0) {
      task_timeout_ms = std::atoi(arg.c_str() + 18);
    } else if (arg.rfind("--sort-buffer-kb=", 0) == 0) {
      sort_buffer_kb = std::strtoull(arg.c_str() + 17, nullptr, 10);
    } else if (arg.rfind("--merge-factor=", 0) == 0) {
      merge_factor = std::atoi(arg.c_str() + 15);
    } else if (arg.rfind("--spill-codec=", 0) == 0) {
      spill_codec = arg.substr(14);
    } else if (arg.rfind("--write-error-p=", 0) == 0) {
      faults.write_error_p = std::atof(arg.c_str() + 16);
    } else if (arg.rfind("--task-commit-error-p=", 0) == 0) {
      faults.task_commit_error_p = std::atof(arg.c_str() + 22);
    } else if (arg.rfind("--job-commit-error-p=", 0) == 0) {
      faults.job_commit_error_p = std::atof(arg.c_str() + 21);
    } else if (arg.rfind("--slow-write-node=", 0) == 0) {
      faults.slow_write_nodes.insert(std::atoi(arg.c_str() + 18));
    } else if (arg.rfind("--slow-write-ms=", 0) == 0) {
      faults.slow_write_latency_ms = std::atof(arg.c_str() + 16);
    } else if (arg.rfind("--write-death-node=", 0) == 0) {
      faults.write_death_nodes.insert(std::atoi(arg.c_str() + 19));
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) return Usage();
  const std::string path = positional[0];
  const double p = positional.size() > 1 ? std::atof(positional[1].c_str()) : 0;
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);
  if (p > 0) faults.read_error_p = p;
  if (faults.active()) fs->SetFaultConfig(faults);

  // Up-front output guard (same rule the engine's committer enforces):
  // refuse to run a single task against an output path that already
  // exists, with an error that names the path.
  if (!out_path.empty()) {
    std::vector<std::string> children;
    if (fs->Exists(out_path) || fs->ListDir(out_path, &children).ok()) {
      return Fail(Status::InvalidArgument(
          "output path already exists: " + out_path +
          " (delete it or choose another --out)"));
    }
  }

  Job job;
  job.config.input_paths = {path};
  if (batch_rows > 0) job.config.batch_rows = batch_rows;
  s = SetWhere(where, pushdown, &job.config);
  if (!s.ok()) return Fail(s);
  job.config.task_timeout_ms = task_timeout_ms;
  job.config.speculative_execution = speculative;
  job.config.sort_buffer_bytes = sort_buffer_kb * 1024;
  if (merge_factor > 0) job.config.merge_factor = merge_factor;
  if (!spill_codec.empty()) {
    if (spill_codec == "none") {
      job.config.spill_codec = CodecType::kNone;
    } else if (spill_codec == "lzf") {
      job.config.spill_codec = CodecType::kLzf;
    } else if (spill_codec == "zlite") {
      job.config.spill_codec = CodecType::kZlite;
    } else {
      return Fail(Status::InvalidArgument("unknown --spill-codec: " +
                                          spill_codec));
    }
  }
  s = DetectInputFormat(fs.get(), path, &job.input_format, nullptr);
  if (!s.ok()) return Fail(s);
  if (out_path.empty()) {
    job.mapper = [](Record&, Emitter*) {};
  } else {
    // With --out the scan becomes a tiny MapReduce job — count records —
    // so the full commit protocol (attempt dirs, atomic task commit, job
    // commit, _SUCCESS) runs against the configured faults.
    job.config.output_path = out_path;
    job.mapper = [](Record&, Emitter* out) {
      out->Emit(Value::String("records"), Value::Int64(1));
    };
    job.reducer = [](const Value& key, const std::vector<Value>& values,
                     Emitter* out) {
      int64_t sum = 0;
      for (const Value& v : values) sum += v.int64_value();
      out->Emit(key, Value::Int64(sum));
    };
  }

  JobRunner runner(fs.get());
  JobReport report;
  s = runner.Run(job, &report);
  std::printf("records: %llu\nbytes read: %llu local, %llu remote\n"
              "map tasks: %zu (%d data-local)\nmap time (sim): %.2fs\n"
              "task retries: %llu\nchecksum failures: %llu\n"
              "failover reads: %llu\nblacklisted nodes:",
              static_cast<unsigned long long>(report.map_input_records),
              static_cast<unsigned long long>(report.bytes_read_local),
              static_cast<unsigned long long>(report.bytes_read_remote),
              report.map_tasks.size(), report.data_local_tasks,
              report.map_phase_seconds,
              static_cast<unsigned long long>(report.task_retries),
              static_cast<unsigned long long>(report.checksum_failures),
              static_cast<unsigned long long>(report.failover_reads));
  if (report.blacklisted_nodes.empty()) {
    std::printf(" none\n");
  } else {
    for (NodeId node : report.blacklisted_nodes) std::printf(" %d", node);
    std::printf("\n");
  }
  if (!out_path.empty()) {
    std::printf(
        "output commit: %llu tasks committed, %llu aborts, _SUCCESS %s\n"
        "write faults: %llu (%llu write retries)\n"
        "speculative: %llu launched, %llu won, %llu lost\n",
        static_cast<unsigned long long>(report.tasks_committed),
        static_cast<unsigned long long>(report.commit_aborts),
        fs->Exists(out_path + "/_SUCCESS") ? "present" : "absent",
        static_cast<unsigned long long>(report.write_faults),
        static_cast<unsigned long long>(report.write_retries),
        static_cast<unsigned long long>(report.speculative_launched),
        static_cast<unsigned long long>(report.speculative_won),
        static_cast<unsigned long long>(report.speculative_lost));
    if (sort_buffer_kb > 0) {
      std::printf(
          "shuffle: %llu spills (%llu bytes), %llu merge passes, "
          "%llu segments merged, peak buffer %llu bytes\n",
          static_cast<unsigned long long>(report.spill_count),
          static_cast<unsigned long long>(report.spill_bytes),
          static_cast<unsigned long long>(report.merge_passes),
          static_cast<unsigned long long>(report.merge_segments),
          static_cast<unsigned long long>(report.peak_spill_buffer_bytes));
    }
  }
  if (!s.ok()) return Fail(s);
  // Persist replica-health marks the scan reported, so a following
  // `colmr stat` / `colmr rerep` sees and repairs them.
  s = fs->SaveImage(image);
  if (!s.ok()) return Fail(s);
  return 0;
}

/// Shared flag parsing for the stats/trace job commands: consumes
/// --lazy / --project from argv, leaving positional args in place.
struct ScanJobFlags {
  bool json = false;
  bool lazy = false;
  std::vector<std::string> projection;
  std::vector<std::string> positional;
  // Predicate pushdown (DESIGN.md §13).
  std::string where;
  bool pushdown = true;
  // Block cache / readahead knobs (DESIGN.md §9).
  uint64_t cache_mb = 0;
  uint64_t readahead_kb = 0;
  int prefetch_depth = 0;
  // Map-loop batch size (DESIGN.md §10); 0 keeps the JobConfig default.
  uint64_t batch_rows = 0;
};

ScanJobFlags ParseScanJobFlags(int argc, char** argv) {
  ScanJobFlags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      flags.json = true;
    } else if (arg == "--lazy") {
      flags.lazy = true;
    } else if (arg.rfind("--where=", 0) == 0) {
      flags.where = arg.substr(8);
    } else if (arg == "--no-pushdown") {
      flags.pushdown = false;
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      flags.cache_mb = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--readahead-kb=", 0) == 0) {
      flags.readahead_kb = std::strtoull(arg.c_str() + 15, nullptr, 10);
    } else if (arg.rfind("--prefetch-depth=", 0) == 0) {
      flags.prefetch_depth = std::atoi(arg.c_str() + 17);
    } else if (arg.rfind("--batch-rows=", 0) == 0) {
      flags.batch_rows = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--project=", 0) == 0) {
      std::string cols = arg.substr(10);
      size_t start = 0;
      while (start <= cols.size()) {
        size_t comma = cols.find(',', start);
        if (comma == std::string::npos) comma = cols.size();
        if (comma > start) {
          flags.projection.push_back(cols.substr(start, comma - start));
        }
        start = comma + 1;
      }
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

/// Builds and runs the count-records scan job both commands share.
Status RunScanJob(MiniHdfs* fs, const std::string& path,
                  const ScanJobFlags& flags, const std::string& trace_path,
                  JobReport* report) {
  Job job;
  job.config.input_paths = {path};
  job.config.lazy_records = flags.lazy;
  job.config.projection = flags.projection;
  job.config.trace_path = trace_path;
  job.config.cache_bytes = flags.cache_mb << 20;
  job.config.readahead_bytes = flags.readahead_kb << 10;
  job.config.prefetch_depth = flags.prefetch_depth;
  if (flags.batch_rows > 0) job.config.batch_rows = flags.batch_rows;
  COLMR_RETURN_IF_ERROR(SetWhere(flags.where, flags.pushdown, &job.config));
  COLMR_RETURN_IF_ERROR(
      DetectInputFormat(fs, path, &job.input_format, nullptr));
  job.mapper = [](Record&, Emitter*) {};
  JobRunner runner(fs);
  return runner.Run(job, report);
}

/// Prints the per-column zone-map summary of a CIF dataset (DESIGN.md
/// §13): per column, how many rowgroups its stats footers cover, how many
/// carry both bounds (prune-capable groups), the null count, and the
/// dataset-wide [min .. max] range. Prints nothing for row-format
/// datasets; columns written before the stats footer existed show
/// "no stats footer".
void PrintZoneMaps(MiniHdfs* fs, const std::string& dataset) {
  std::vector<std::string> children;
  if (!fs->ListDir(dataset, &children).ok()) return;
  Schema::Ptr schema;
  std::vector<std::string> dirs;
  for (const std::string& child : children) {
    const std::string dir = dataset + "/" + child;
    Schema::Ptr dir_schema;
    if (ReadDatasetSchema(fs, dir, &dir_schema).ok()) {
      if (schema == nullptr) schema = dir_schema;
      dirs.push_back(dir);
    }
  }
  if (schema == nullptr) return;  // not a CIF dataset
  std::printf("zone maps: %zu split-directories, %llu-row groups\n",
              dirs.size(),
              static_cast<unsigned long long>(kCifStatsRowGroup));
  std::printf("  %-12s %-10s %8s %8s %10s  %s\n", "column", "type", "groups",
              "bounded", "nulls", "range");
  for (const auto& field : schema->fields()) {
    uint64_t groups = 0, bounded = 0, nulls = 0;
    bool any_footer = false;
    // Dataset-wide bounds exist only when every split-directory's footer
    // carries the file-level bound (same conservative rule pruning uses).
    bool all_min = true, all_max = true;
    Value min, max;
    bool have_min = false, have_max = false;
    for (const std::string& dir : dirs) {
      ColumnFileStats stats;
      bool present = false;
      if (!ReadColumnStats(fs, dir + "/" + field.name + ".col", ReadContext{},
                           &stats, &present)
               .ok() ||
          !present) {
        all_min = all_max = false;
        continue;
      }
      any_footer = true;
      groups += stats.groups.size();
      for (const ColumnStats& g : stats.groups) {
        if (g.has_min && g.has_max) ++bounded;
      }
      nulls += stats.file.nulls;
      if (stats.file.values > stats.file.nulls) {
        if (!stats.file.has_min) all_min = false;
        if (!stats.file.has_max) all_max = false;
      }
      if (stats.file.has_min &&
          (!have_min || PrimitiveLess(stats.file.min, min))) {
        min = stats.file.min;
        have_min = true;
      }
      if (stats.file.has_max &&
          (!have_max || PrimitiveLess(max, stats.file.max))) {
        max = stats.file.max;
        have_max = true;
      }
    }
    std::string range;
    if (!any_footer) {
      range = "no stats footer";
    } else if (all_min && all_max && have_min && have_max) {
      range = "[" + min.ToString() + " .. " + max.ToString() + "]";
    } else {
      range = "-";  // counts-only column (container, all-null, or NaN)
    }
    std::printf("  %-12s %-10s %8llu %8llu %10llu  %s\n", field.name.c_str(),
                field.type->ToString().c_str(),
                static_cast<unsigned long long>(groups),
                static_cast<unsigned long long>(bounded),
                static_cast<unsigned long long>(nulls), range.c_str());
  }
  std::printf("\n");
}

int CmdStats(const std::string& image, int argc, char** argv) {
  const ScanJobFlags flags = ParseScanJobFlags(argc, argv);
  if (flags.positional.size() != 1) return Usage();
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);

  if (!flags.json) PrintZoneMaps(fs.get(), flags.positional[0]);

  // Diff the process-wide registry around the job: the delta is exactly
  // what this scan did, across every layer (hdfs, cif, serde, mr).
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  JobReport report;
  s = RunScanJob(fs.get(), flags.positional[0], flags, "", &report);
  if (!s.ok()) return Fail(s);
  const MetricsSnapshot delta =
      MetricsRegistry::Default().Snapshot().Diff(before).NonZero();
  if (flags.json) {
    std::printf("%s\n", delta.ToJson().c_str());
  } else {
    std::printf("%s", delta.ToText().c_str());
  }
  return 0;
}

int CmdTrace(const std::string& image, int argc, char** argv) {
  const ScanJobFlags flags = ParseScanJobFlags(argc, argv);
  if (flags.positional.size() != 2) return Usage();
  const std::string& path = flags.positional[0];
  const std::string& out_path = flags.positional[1];
  Status s;
  auto fs = LoadFs(image, &s);
  if (!s.ok()) return Fail(s);

  JobReport report;
  s = RunScanJob(fs.get(), path, flags, out_path, &report);
  if (!s.ok()) return Fail(s);
  std::printf("scanned %llu records in %zu map tasks\n"
              "trace written to %s — open it at https://ui.perfetto.dev\n",
              static_cast<unsigned long long>(report.map_input_records),
              report.map_tasks.size(), out_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string image = argv[2];
  argc -= 3;
  argv += 3;
  if (command == "init") return CmdInit(image, argc, argv);
  if (command == "gen") return CmdGen(image, argc, argv);
  if (command == "ls") return CmdLs(image, argc, argv);
  if (command == "stat") return CmdStat(image);
  if (command == "schema") return CmdSchema(image, argc, argv);
  if (command == "head") return CmdHead(image, argc, argv);
  if (command == "convert") return CmdConvert(image, argc, argv);
  if (command == "kill") return CmdKill(image, argc, argv);
  if (command == "rerep") return CmdRerep(image);
  if (command == "corrupt") return CmdCorrupt(image, argc, argv);
  if (command == "scan") return CmdScan(image, argc, argv);
  if (command == "stats") return CmdStats(image, argc, argv);
  if (command == "trace") return CmdTrace(image, argc, argv);
  return Usage();
}

}  // namespace
}  // namespace colmr

int main(int argc, char** argv) { return colmr::Run(argc, argv); }
